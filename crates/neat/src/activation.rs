//! Node activation functions.
//!
//! NEAT node genes carry an *activation* attribute (Fig 6 of the paper
//! reserves 4 bits for it in the 64-bit gene encoding, so up to 16 kinds).
//! The set below mirrors `neat-python`'s defaults, which is the codebase the
//! paper instrumented.

use crate::rng::XorWow;
use std::fmt;

/// Activation applied by a node: `output = act(bias + response * aggregated)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
#[repr(u8)]
pub enum Activation {
    /// Steepened logistic sigmoid used by classic NEAT: `1/(1+e^(-4.9z))`,
    /// rescaled by `neat-python` to `sigmoid(5z)`.
    #[default]
    Sigmoid = 0,
    /// Hyperbolic tangent of `2.5z`.
    Tanh = 1,
    /// Rectified linear unit.
    Relu = 2,
    /// Identity pass-through.
    Identity = 3,
    /// Sine of `5z`.
    Sin = 4,
    /// Gaussian bump `e^(-5z^2)` clamped to `z ∈ [-3.4, 3.4]`.
    Gauss = 5,
    /// Absolute value.
    Abs = 6,
    /// Identity clamped to `[-1, 1]`.
    Clamped = 7,
    /// Square.
    Square = 8,
    /// Cube.
    Cube = 9,
    /// Natural exponential of `z` clamped to `[-60, 60]`.
    Exp = 10,
    /// `log(max(z, 1e-7))`.
    Log = 11,
    /// Hat function `max(0, 1-|z|)`.
    Hat = 12,
    /// Softplus `0.2 * ln(1 + e^(5z))`.
    Softplus = 13,
    /// Inverse `1/z` (0 maps to 0).
    Inv = 14,
    /// Scaled ELU.
    Selu = 15,
}

/// Number of distinct activation kinds (fits the 4-bit hardware field).
pub const ACTIVATION_COUNT: u8 = 16;

impl Activation {
    /// All activation kinds, in hardware-encoding order.
    pub const ALL: [Activation; ACTIVATION_COUNT as usize] = [
        Activation::Sigmoid,
        Activation::Tanh,
        Activation::Relu,
        Activation::Identity,
        Activation::Sin,
        Activation::Gauss,
        Activation::Abs,
        Activation::Clamped,
        Activation::Square,
        Activation::Cube,
        Activation::Exp,
        Activation::Log,
        Activation::Hat,
        Activation::Softplus,
        Activation::Inv,
        Activation::Selu,
    ];

    /// Applies the activation to a pre-activation value `z`.
    ///
    /// Every branch is total: inputs are clamped where the underlying
    /// function would overflow, so the result is always finite for finite
    /// input.
    pub fn apply(self, z: f64) -> f64 {
        match self {
            Activation::Sigmoid => {
                let z = (5.0 * z).clamp(-60.0, 60.0);
                1.0 / (1.0 + (-z).exp())
            }
            Activation::Tanh => (2.5 * z).clamp(-60.0, 60.0).tanh(),
            Activation::Relu => z.max(0.0),
            Activation::Identity => z,
            Activation::Sin => (5.0 * z).clamp(-60.0, 60.0).sin(),
            Activation::Gauss => {
                let z = z.clamp(-3.4, 3.4);
                (-5.0 * z * z).exp()
            }
            Activation::Abs => z.abs(),
            Activation::Clamped => z.clamp(-1.0, 1.0),
            Activation::Square => z * z,
            Activation::Cube => z * z * z,
            Activation::Exp => z.clamp(-60.0, 60.0).exp(),
            Activation::Log => z.max(1e-7).ln(),
            Activation::Hat => (1.0 - z.abs()).max(0.0),
            Activation::Softplus => {
                let z = (5.0 * z).clamp(-60.0, 60.0);
                0.2 * (1.0 + z.exp()).ln()
            }
            Activation::Inv => {
                if z == 0.0 {
                    0.0
                } else {
                    (1.0 / z).clamp(-1e12, 1e12)
                }
            }
            Activation::Selu => {
                let lam = 1.050_700_987_355_480_5;
                let alpha = 1.673_263_242_354_377_2;
                if z > 0.0 {
                    lam * z
                } else {
                    lam * alpha * (z.clamp(-60.0, 0.0).exp() - 1.0)
                }
            }
        }
    }

    /// Hardware encoding (the 4-bit activation field of the gene word).
    pub fn to_code(self) -> u8 {
        self as u8
    }

    /// Decodes the 4-bit hardware field. Out-of-range codes wrap modulo the
    /// table size, mirroring what a hardware decoder with a 4-bit field does.
    pub fn from_code(code: u8) -> Activation {
        Activation::ALL[(code % ACTIVATION_COUNT) as usize]
    }

    /// Picks a uniformly random activation from `options`.
    ///
    /// Falls back to [`Activation::Sigmoid`] when `options` is empty.
    pub fn random(rng: &mut XorWow, options: &[Activation]) -> Activation {
        if options.is_empty() {
            Activation::Sigmoid
        } else {
            options[rng.below(options.len())]
        }
    }
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
            Activation::Relu => "relu",
            Activation::Identity => "identity",
            Activation::Sin => "sin",
            Activation::Gauss => "gauss",
            Activation::Abs => "abs",
            Activation::Clamped => "clamped",
            Activation::Square => "square",
            Activation::Cube => "cube",
            Activation::Exp => "exp",
            Activation::Log => "log",
            Activation::Hat => "hat",
            Activation::Softplus => "softplus",
            Activation::Inv => "inv",
            Activation::Selu => "selu",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for act in Activation::ALL {
            assert_eq!(Activation::from_code(act.to_code()), act);
        }
    }

    #[test]
    fn sigmoid_limits() {
        assert!(Activation::Sigmoid.apply(10.0) > 0.999);
        assert!(Activation::Sigmoid.apply(-10.0) < 0.001);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn relu_clamps_negative() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
    }

    #[test]
    fn clamped_stays_in_unit_box() {
        assert_eq!(Activation::Clamped.apply(9.0), 1.0);
        assert_eq!(Activation::Clamped.apply(-9.0), -1.0);
        assert_eq!(Activation::Clamped.apply(0.25), 0.25);
    }

    #[test]
    fn all_finite_on_extreme_inputs() {
        for act in Activation::ALL {
            for z in [-1e9, -100.0, -1.0, 0.0, 1.0, 100.0, 1e9] {
                let y = act.apply(z);
                assert!(y.is_finite(), "{act} produced non-finite output for {z}");
            }
        }
    }

    #[test]
    fn random_respects_options() {
        let mut rng = XorWow::seed_from_u64_value(3);
        let options = [Activation::Tanh, Activation::Relu];
        for _ in 0..100 {
            let a = Activation::random(&mut rng, &options);
            assert!(options.contains(&a));
        }
        assert_eq!(Activation::random(&mut rng, &[]), Activation::Sigmoid);
    }
}
