//! Bit-identical checkpoint/resume — the continuous-learning guarantee.
//!
//! Checkpoint at generation G (through the full binary snapshot wire
//! format), restore into a fresh process-equivalent `Session`, run N more
//! generations: the fitness history, species assignments and genome bytes
//! must be identical to an uninterrupted G+N run — at 1 and 4 workers, on
//! CartPole and on the nonstationary drift environment, and across
//! *different* worker counts before and after the power cycle.

use genesys::gym::{DriftingEvaluator, EnvKind, EpisodeEvaluator};
use genesys::neat::{Evaluator, NeatConfig, RunState, Session};
use genesys::soc::{encode_population, snapshot_from_bytes, snapshot_to_bytes};

const G: usize = 3;
const N: usize = 3;
const POP: usize = 24;

fn cartpole_config() -> NeatConfig {
    let mut config = EnvKind::CartPole.neat_config();
    config.pop_size = POP;
    config.target_fitness = None; // fixed-length runs for exact comparison
    config
}

fn drift_config() -> NeatConfig {
    NeatConfig::builder(4, 1).pop_size(POP).build().unwrap()
}

/// Runs the uninterrupted G+N reference and the checkpointed G → bytes →
/// restore → N variant, asserting every acceptance axis.
fn assert_resume_bit_identical<W: Evaluator>(
    config: NeatConfig,
    seed: u64,
    make_workload: impl Fn() -> W,
    head_workers: usize,
    tail_workers: usize,
    label: &str,
) {
    // Uninterrupted reference (serial: the determinism contract makes
    // worker counts irrelevant, which the assertions below re-prove).
    let mut full = Session::builder(config.clone(), seed)
        .unwrap()
        .workload(make_workload())
        .build();
    let full_report = full.run(G + N);
    let full_state = full
        .export_state()
        .as_monolithic()
        .cloned()
        .expect("monolithic run");

    // Checkpointed run: G generations, snapshot to *bytes*, drop, restore.
    let mut head = Session::builder(config, seed)
        .unwrap()
        .workload(make_workload())
        .threads(head_workers)
        .build();
    let head_report = head.run(G);
    let bytes = snapshot_to_bytes(&head.export_state()).expect("encodable");
    drop(head);

    let restored: RunState = snapshot_from_bytes(&bytes).expect("decodable");
    let mut tail = Session::resume(restored)
        .unwrap()
        .workload(make_workload())
        .threads(tail_workers)
        .build();
    let tail_report = tail.run(N);
    let tail_state = tail
        .export_state()
        .as_monolithic()
        .cloned()
        .expect("monolithic run");

    // Fitness history: head + tail == uninterrupted, element-exact.
    assert_eq!(
        &full_report.history[..G],
        &head_report.history[..],
        "{label}: pre-checkpoint history diverged"
    );
    assert_eq!(
        &full_report.history[G..],
        &tail_report.history[..],
        "{label}: post-resume history diverged"
    );

    // Species assignments: ids, membership and representatives.
    assert_eq!(
        full_state.species.len(),
        tail_state.species.len(),
        "{label}: species count diverged"
    );
    for (a, b) in full_state.species.iter().zip(tail_state.species.iter()) {
        assert_eq!(a.id, b.id, "{label}: species id diverged");
        assert_eq!(a.members, b.members, "{label}: species members diverged");
        assert_eq!(
            a.representative, b.representative,
            "{label}: representative diverged"
        );
        assert_eq!(
            a.last_improved, b.last_improved,
            "{label}: stagnation bookkeeping diverged"
        );
    }

    // Genome bytes: the hardware genome-buffer images are word-identical.
    assert_eq!(
        encode_population(full.genomes()),
        encode_population(tail.genomes()),
        "{label}: genome-buffer bytes diverged"
    );

    // And the complete states (RNG stream, counters, best-ever) agree.
    assert_eq!(full_state, tail_state, "{label}: evolution state diverged");
}

#[test]
fn cartpole_resume_is_bit_identical_at_1_worker() {
    assert_resume_bit_identical(
        cartpole_config(),
        7,
        || EpisodeEvaluator::new(EnvKind::CartPole),
        1,
        1,
        "cartpole w1",
    );
}

#[test]
fn cartpole_resume_is_bit_identical_at_4_workers() {
    assert_resume_bit_identical(
        cartpole_config(),
        7,
        || EpisodeEvaluator::new(EnvKind::CartPole),
        4,
        4,
        "cartpole w4",
    );
}

#[test]
fn nonstationary_resume_is_bit_identical_at_1_worker() {
    assert_resume_bit_identical(
        drift_config(),
        4242,
        || DriftingEvaluator::new(4242, 30, POP as u64),
        1,
        1,
        "drift w1",
    );
}

#[test]
fn nonstationary_resume_is_bit_identical_at_4_workers() {
    assert_resume_bit_identical(
        drift_config(),
        4242,
        || DriftingEvaluator::new(4242, 30, POP as u64),
        4,
        4,
        "drift w4",
    );
}

#[test]
fn worker_count_may_change_across_the_power_cycle() {
    // Checkpoint under 1 worker, resume under 4 (and vice versa): the
    // trajectory must still match the uninterrupted serial run.
    assert_resume_bit_identical(
        cartpole_config(),
        19,
        || EpisodeEvaluator::new(EnvKind::CartPole),
        1,
        4,
        "cartpole w1->w4",
    );
    assert_resume_bit_identical(
        drift_config(),
        99,
        || DriftingEvaluator::new(99, 30, POP as u64),
        4,
        1,
        "drift w4->w1",
    );
}

#[test]
fn drift_phase_offset_survives_the_snapshot() {
    // A run whose drift started mid-world (nonzero episode offset) must
    // resume in the same regime schedule.
    let config = drift_config();
    let make = || DriftingEvaluator::new(5, 20, POP as u64).with_episode_offset(123);

    let mut full = Session::builder(config.clone(), 5)
        .unwrap()
        .workload(make())
        .build();
    let full_report = full.run(4);

    let mut head = Session::builder(config, 5)
        .unwrap()
        .workload(make())
        .build();
    head.run(2);
    let bytes = snapshot_to_bytes(&head.export_state()).unwrap();
    let state = snapshot_from_bytes(&bytes).unwrap();
    assert_eq!(state.workload_state(), 123, "offset rides in the snapshot");
    // Resume with a *fresh* evaluator (offset 0): the snapshot restores it.
    let mut tail = Session::resume(state)
        .unwrap()
        .workload(DriftingEvaluator::new(5, 20, POP as u64))
        .build();
    assert_eq!(tail.workload().episode_offset(), 123);
    let tail_report = tail.run(2);
    assert_eq!(&full_report.history[2..], &tail_report.history[..]);
}

#[test]
fn megapopulation_resume_is_bit_identical_with_batched_lanes() {
    // The megapopulation regime in one resume test: a population well past
    // the speciation representative cap's founding budget, the batched
    // rollout lanes (eval_batch > 1), and a worker-count change across the
    // power cycle. The v2 snapshot must carry all of it bit-exactly.
    let mut config = EnvKind::CartPole.neat_config();
    config.pop_size = 512;
    config.species_representative_cap = 4;
    config.eval_batch = 3;
    config.compatibility_threshold = 0.6; // force the cap to actually bind
    config.target_fitness = None;
    let batch = config.eval_batch;
    assert_resume_bit_identical(
        config,
        31,
        move || {
            EpisodeEvaluator::new(EnvKind::CartPole)
                .episodes(3)
                .batch(batch)
        },
        1,
        4,
        "megapop w1->w4",
    );
}
