//! Megapopulation smoke/scale run: CartPole evolution at `--pop`
//! thousands-to-tens-of-thousands, exercising every megapopulation hot
//! path end to end — geometric-skip mutation, capped speciation over the
//! flat representative arena, and (with `--episodes N --batch B`) the
//! batched SoA rollout lanes — and **asserting the determinism contract**:
//! the parallel run's history and final genomes must be bit-identical to
//! the serial one.
//!
//! ```text
//! megapop [--pop N] [--generations N] [--threads N] [--seed N]
//!         [--episodes N] [--batch N]
//! ```
//!
//! Defaults: `--pop 4096 --generations 2 --threads 4 --episodes 1`,
//! `--batch` from the config's `eval_batch` knob. `--threads 1` skips the
//! parallel leg. CI runs this as the megapop smoke job.

use genesys_bench::ExperimentArgs;
use genesys_gym::{EnvKind, EpisodeEvaluator};
use genesys_neat::{Executor, GenerationStats, Genome, Session};
use std::sync::Arc;
use std::time::Instant;

fn run(
    pop: usize,
    generations: usize,
    seed: u64,
    episodes: usize,
    batch: usize,
    exact: bool,
    pool: Option<Arc<Executor>>,
) -> (Vec<GenerationStats>, Vec<Genome>, f64) {
    let kind = EnvKind::CartPole;
    let mut config = kind.neat_config();
    config.pop_size = pop;
    config.eval_batch = batch;
    config.speciate_exact = exact;
    let builder = Session::builder(config, seed).expect("cartpole preset is valid");
    let builder = match pool {
        Some(pool) => builder.executor(pool),
        None => builder,
    };
    let mut session = builder
        .workload(EpisodeEvaluator::new(kind).episodes(episodes).batch(batch))
        .build();
    let t0 = Instant::now();
    let report = session.run(generations);
    let elapsed = t0.elapsed().as_secs_f64();
    (report.history, session.genomes().to_vec(), elapsed)
}

fn main() {
    let args = ExperimentArgs::parse();
    let pop = args.pop_or(4096);
    let generations = args.generations_or(2);
    let threads = args.threads_or(4);
    let seed = args.base_seed(42);
    let episodes = args.get_usize("--episodes", 1);
    let batch = args.get_usize("--batch", 1);

    println!(
        "megapop: CartPole, pop {pop}, {generations} generations, seed {seed}, \
         {episodes} episode(s)/eval, batch {batch}"
    );

    let (serial_hist, serial_genomes, serial_s) =
        run(pop, generations, seed, episodes, batch, false, None);
    let best = serial_hist
        .iter()
        .map(|s| s.max_fitness)
        .fold(f64::NEG_INFINITY, f64::max);
    let genes: usize = serial_genomes.iter().map(Genome::num_genes).sum();
    println!(
        "serial: {serial_s:.2}s total, {:.1}ms/generation, best fitness {best}, {genes} genes in the final population",
        serial_s * 1e3 / generations.max(1) as f64
    );

    if threads > 1 {
        let pool = Arc::new(Executor::new(threads));
        let (par_hist, par_genomes, par_s) =
            run(pop, generations, seed, episodes, batch, false, Some(pool));
        println!(
            "threads {threads}: {par_s:.2}s total, {:.1}ms/generation ({:.2}x vs serial)",
            par_s * 1e3 / generations.max(1) as f64,
            serial_s / par_s.max(1e-9)
        );
        // The determinism contract: worker count must not leak into the
        // trajectory. Bit-exact across every generation and genome.
        for (gen, (a, b)) in serial_hist.iter().zip(par_hist.iter()).enumerate() {
            assert_eq!(
                a, b,
                "generation {gen} diverged between serial and {threads}-worker runs"
            );
        }
        assert_eq!(
            serial_genomes, par_genomes,
            "final populations diverged between serial and {threads}-worker runs"
        );
        println!("determinism: serial and {threads}-worker runs are bit-identical");
    }

    // Exact-speciation A/B: rerun with the signature-pruned scan forced
    // off (every candidate distance computed exactly, no parent-species
    // hints). Pruning is a pure acceleration, so the trajectory must be
    // bit-identical — any divergence means the lower bound skipped a
    // candidate that mattered.
    let (exact_hist, exact_genomes, exact_s) =
        run(pop, generations, seed, episodes, batch, true, None);
    for (gen, (a, b)) in serial_hist.iter().zip(exact_hist.iter()).enumerate() {
        assert_eq!(
            a, b,
            "generation {gen} diverged between pruned and exact speciation"
        );
    }
    assert_eq!(
        serial_genomes, exact_genomes,
        "final populations diverged between pruned and exact speciation"
    );
    println!("exact A/B: pruned and exact speciation runs are bit-identical ({exact_s:.2}s exact)");
}
