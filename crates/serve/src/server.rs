//! The session server: one scheduler thread multiplexing many evolution
//! sessions over one shared [`Executor`].
//!
//! # Architecture
//!
//! All session state lives on a single scheduler thread; clients talk to
//! it through [`Client`] (an in-process handle; `crate::net` bridges TCP
//! onto the same channel). Parallelism is *inside* a generation, not
//! across sessions: the scheduler runs one generation at a time and the
//! shared [`Executor`] fans its evaluations/reproduction out across
//! workers. That shape keeps the determinism contract trivially intact —
//! each session's trajectory depends only on its own state and the
//! index-keyed seeds, never on how sessions interleave.
//!
//! # Scheduling
//!
//! Fairness is **generation-granular round-robin**: a `step(n)` request
//! queues `n` generation tickets; the scheduler cycles through sessions
//! with queued work, running exactly one generation per turn. A tenant
//! asking for 1000 generations cannot starve one asking for 1 — the
//! short request completes within one cycle of the ready queue.
//! Commands are drained between quanta, so submits/observes/checkpoints
//! stay responsive while long step queues run.
//!
//! # Admission and eviction
//!
//! Two caps bound memory: `max_sessions` (admission: further submits are
//! rejected with [`ServeError::ServerFull`]) and `max_resident` (RAM: at
//! most this many sessions keep live arenas). When a session beyond the
//! resident cap is needed, the least-recently-touched resident session —
//! idle ones first — is spilled to disk as a `genesys_core::snapshot`
//! image and dropped from RAM. Rehydration rebuilds the session from the
//! image via `Session::resume`; because snapshots capture the complete
//! evolution state, an evict/rehydrate cycle is **bit-identical** to
//! never having evicted (asserted by `tests/serve_eviction.rs` and the
//! CI smoke job). Checkpoint requests against evicted sessions are
//! served straight from the spill file without rehydrating.

use crate::error::ServeError;
use crate::protocol::{Reply, Request, ServerStats};
use crate::workload::{ServeWorkload, WorkloadSpec};
use genesys_core::snapshot::{snapshot_from_bytes, snapshot_to_bytes};
use genesys_neat::{EvolutionBackend, Executor, OwnedGenerationEvent, Session};
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::mpsc::{self, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Server sizing and placement knobs; start with
/// [`ServerConfig::new`] and override with the builder methods.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Admission cap: live sessions (resident + evicted). Default 4096.
    pub max_sessions: usize,
    /// RAM cap: sessions with live arenas. Default 256 (clamped ≥ 1).
    pub max_resident: usize,
    /// Worker threads of the shared executor (≤ 1 keeps evaluation
    /// serial). Default 1.
    pub threads: usize,
    /// Per-session ring buffer of generation events for the `observe`
    /// verb; older events are dropped. Default 32.
    pub event_buffer: usize,
    /// Directory evicted sessions spill their snapshot images into.
    pub spill_dir: PathBuf,
}

impl ServerConfig {
    /// Defaults with the given spill directory (created on start).
    pub fn new(spill_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            max_sessions: 4096,
            max_resident: 256,
            threads: 1,
            event_buffer: 32,
            spill_dir: spill_dir.into(),
        }
    }

    /// Sets the admission cap.
    pub fn max_sessions(mut self, n: usize) -> Self {
        self.max_sessions = n;
        self
    }

    /// Sets the resident-arena cap.
    pub fn max_resident(mut self, n: usize) -> Self {
        self.max_resident = n;
        self
    }

    /// Sets the shared executor's worker count.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Sets the per-session event ring size.
    pub fn event_buffer(mut self, n: usize) -> Self {
        self.event_buffer = n;
        self
    }
}

/// Completion callback of one request; invoked exactly once on the
/// scheduler thread.
pub(crate) type ReplyFn = Box<dyn FnOnce(Result<Reply, ServeError>) + Send>;

enum Command {
    Request(Request, ReplyFn),
    /// Sent by [`Server::drop`]; outlives lingering [`Client`] clones,
    /// whose senders would otherwise keep the scheduler's `recv` alive.
    Shutdown,
}

/// An in-process client handle: sends [`Request`]s to the scheduler and
/// receives [`Reply`]s. Cheap to clone; clones share the server. The
/// blocking [`Client::call`] is the whole API — the TCP layer
/// (`crate::net`) multiplexes many wire connections onto handles like
/// this one.
#[derive(Clone)]
pub struct Client {
    tx: Sender<Command>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client").finish_non_exhaustive()
    }
}

impl Client {
    /// Sends one request and blocks until its reply.
    ///
    /// # Errors
    ///
    /// [`ServeError::Disconnected`] if the server has shut down;
    /// otherwise whatever the verb returns.
    pub fn call(&self, request: Request) -> Result<Reply, ServeError> {
        let (tx, rx) = mpsc::channel();
        self.dispatch(
            request,
            Box::new(move |result| {
                let _ = tx.send(result);
            }),
        )?;
        rx.recv().map_err(|_| ServeError::Disconnected)?
    }

    /// Sends one request with an explicit completion callback (the
    /// non-blocking form the poll loop uses to pipeline).
    pub(crate) fn dispatch(&self, request: Request, reply: ReplyFn) -> Result<(), ServeError> {
        self.tx
            .send(Command::Request(request, reply))
            .map_err(|_| ServeError::Disconnected)
    }
}

/// The server: owns the scheduler thread. Dropping it shuts the
/// scheduler down (pending requests get no reply; clients see
/// [`ServeError::Disconnected`]). Spill files are left on disk — they
/// are valid snapshot images and double as a crash-recovery surface.
#[derive(Debug)]
pub struct Server {
    tx: Option<Sender<Command>>,
    handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Starts the scheduler thread (and the shared executor if
    /// `config.threads > 1`).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the spill directory cannot be created.
    pub fn start(config: ServerConfig) -> Result<Server, ServeError> {
        std::fs::create_dir_all(&config.spill_dir)?;
        let pool = (config.threads > 1).then(|| Arc::new(Executor::new(config.threads)));
        let (tx, rx) = mpsc::channel();
        let scheduler = Scheduler {
            config,
            pool,
            rx,
            sessions: BTreeMap::new(),
            ready: VecDeque::new(),
            next_id: 1,
            clock: 0,
            generations: 0,
            dropped_events: 0,
            evictions: 0,
            rehydrations: 0,
        };
        let handle = std::thread::Builder::new()
            .name("genesys-serve".into())
            .spawn(move || scheduler.run())
            .map_err(ServeError::from)?;
        Ok(Server {
            tx: Some(tx),
            handle: Some(handle),
        })
    }

    /// A new in-process client handle.
    pub fn client(&self) -> Client {
        Client {
            tx: self.tx.clone().expect("sender lives until drop"),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(Command::Shutdown);
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

struct Ticket {
    remaining: u32,
    reply: ReplyFn,
}

type ServeSession = Session<ServeWorkload, EvolutionBackend>;

struct Entry {
    spec: WorkloadSpec,
    resident: Option<Box<ServeSession>>,
    /// The spill file holds the state at `generation` (valid while the
    /// session has not stepped since the last spill).
    spilled: bool,
    generation: u64,
    events: VecDeque<OwnedGenerationEvent>,
    tickets: VecDeque<Ticket>,
    queued: bool,
    touch: u64,
}

struct Scheduler {
    config: ServerConfig,
    pool: Option<Arc<Executor>>,
    rx: Receiver<Command>,
    sessions: BTreeMap<u64, Entry>,
    /// Round-robin queue of session ids with queued generation tickets.
    ready: VecDeque<u64>,
    next_id: u64,
    /// Logical LRU clock (bumped on every touch).
    clock: u64,
    generations: u64,
    evictions: u64,
    rehydrations: u64,
    /// Observe-ring overflow drops, summed across sessions (surfaced in
    /// [`ServerStats::dropped_events`]).
    dropped_events: u64,
}

impl Scheduler {
    fn run(mut self) {
        loop {
            // Block only when no generation work is queued.
            if self.ready.is_empty() {
                match self.rx.recv() {
                    Ok(Command::Shutdown) | Err(_) => return,
                    Ok(cmd) => self.handle(cmd),
                }
            }
            // Drain commands without blocking, so submits/observes stay
            // responsive while long step queues run.
            loop {
                match self.rx.try_recv() {
                    Ok(Command::Shutdown) | Err(TryRecvError::Disconnected) => return,
                    Ok(cmd) => self.handle(cmd),
                    Err(TryRecvError::Empty) => break,
                }
            }
            // One generation quantum for the session at the head of the
            // round-robin.
            if let Some(sid) = self.ready.pop_front() {
                self.quantum(sid);
            }
        }
    }

    fn handle(&mut self, cmd: Command) {
        let Command::Request(request, reply) = cmd else {
            return; // Shutdown is intercepted by the run loop.
        };
        match request {
            Request::Step {
                session,
                generations,
            } => self.enqueue_step(session, generations, reply),
            other => {
                let result = self.immediate(other);
                reply(result);
            }
        }
    }

    /// Verbs answered without running generations.
    fn immediate(&mut self, request: Request) -> Result<Reply, ServeError> {
        match request {
            Request::Submit {
                seed,
                workload,
                config,
            } => {
                self.admit()?;
                self.make_room(None)?;
                let session = Session::builder(*config, seed)?;
                let session = self.finish_build(session.workload(workload.build()));
                let id = self.alloc_id();
                self.insert(id, workload, session, 0);
                Ok(Reply::Submitted {
                    session: id,
                    generation: 0,
                })
            }
            Request::Resume { workload, snapshot } => {
                self.admit()?;
                self.make_room(None)?;
                let state = snapshot_from_bytes(&snapshot)?;
                let generation = state.generation();
                let session = Session::resume(state)?;
                let session = self.finish_build(session.workload(workload.build()));
                let id = self.alloc_id();
                self.insert(id, workload, session, generation);
                Ok(Reply::Submitted {
                    session: id,
                    generation,
                })
            }
            Request::Observe { session, max } => {
                let entry = self
                    .sessions
                    .get_mut(&session)
                    .ok_or(ServeError::UnknownSession(session))?;
                let n = entry.events.len().min(max as usize);
                let events = entry.events.drain(..n).collect();
                Ok(Reply::Events { session, events })
            }
            Request::Checkpoint { session } => {
                let image = self.checkpoint(session)?;
                Ok(Reply::Snapshot { session, image })
            }
            Request::Evict { session } => {
                if !self.sessions.contains_key(&session) {
                    return Err(ServeError::UnknownSession(session));
                }
                if !self.sessions[&session].tickets.is_empty() {
                    return Err(ServeError::SessionBusy(session));
                }
                self.evict(session)?;
                Ok(Reply::Evicted { session })
            }
            Request::Stats => Ok(Reply::Stats(self.stats())),
            Request::Step { .. } => unreachable!("step is queued, not immediate"),
        }
    }

    fn enqueue_step(&mut self, sid: u64, generations: u32, reply: ReplyFn) {
        let Some(entry) = self.sessions.get_mut(&sid) else {
            reply(Err(ServeError::UnknownSession(sid)));
            return;
        };
        entry.tickets.push_back(Ticket {
            remaining: generations,
            reply,
        });
        if !entry.queued {
            entry.queued = true;
            self.ready.push_back(sid);
        }
    }

    /// Runs one generation for `sid` and settles any ticket it completes.
    fn quantum(&mut self, sid: u64) {
        if let Err(e) = self.ensure_resident(sid) {
            // The session cannot run (spill unreadable, state invalid):
            // fail every queued ticket with the typed error.
            if let Some(entry) = self.sessions.get_mut(&sid) {
                entry.queued = false;
                for ticket in entry.tickets.drain(..) {
                    (ticket.reply)(Err(e.clone()));
                }
            }
            return;
        }
        let touch = self.tick();
        let event_buffer = self.config.event_buffer;
        let entry = self.sessions.get_mut(&sid).expect("session exists");
        let session = entry.resident.as_mut().expect("residency ensured");
        let stats = session.step();
        let event = OwnedGenerationEvent {
            stats,
            best: session.best_genome().map(genesys_neat::BestSummary::of),
        };
        entry.generation = session.generation() as u64;
        entry.spilled = false; // disk image (if any) is now stale
        entry.touch = touch;
        entry.events.push_back(event.clone());
        let mut dropped = 0u64;
        while entry.events.len() > event_buffer {
            entry.events.pop_front();
            dropped += 1;
        }
        let generation = entry.generation;
        if let Some(ticket) = entry.tickets.front_mut() {
            ticket.remaining -= 1;
            if ticket.remaining == 0 {
                let ticket = entry.tickets.pop_front().expect("front exists");
                (ticket.reply)(Ok(Reply::Stepped {
                    session: sid,
                    generation,
                    event: Box::new(event),
                }));
            }
        }
        if entry.tickets.is_empty() {
            entry.queued = false;
        } else {
            self.ready.push_back(sid);
        }
        self.generations += 1;
        self.dropped_events += dropped;
    }

    fn admit(&self) -> Result<(), ServeError> {
        if self.sessions.len() >= self.config.max_sessions {
            return Err(ServeError::ServerFull {
                live: self.sessions.len(),
                cap: self.config.max_sessions,
            });
        }
        Ok(())
    }

    fn alloc_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn finish_build(
        &self,
        builder: genesys_neat::SessionBuilder<EvolutionBackend, ServeWorkload>,
    ) -> Box<ServeSession> {
        let builder = match &self.pool {
            Some(pool) => builder.executor(Arc::clone(pool)),
            None => builder,
        };
        Box::new(builder.build())
    }

    fn insert(&mut self, id: u64, spec: WorkloadSpec, session: Box<ServeSession>, generation: u64) {
        let touch = self.tick();
        self.sessions.insert(
            id,
            Entry {
                spec,
                resident: Some(session),
                spilled: false,
                generation,
                events: VecDeque::new(),
                tickets: VecDeque::new(),
                queued: false,
                touch,
            },
        );
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn resident_count(&self) -> usize {
        self.sessions
            .values()
            .filter(|e| e.resident.is_some())
            .count()
    }

    fn spill_path(&self, sid: u64) -> PathBuf {
        self.config.spill_dir.join(format!("sess-{sid}.gsnap"))
    }

    /// Evicts least-recently-touched residents (idle ones first) until
    /// one more session fits under the resident cap. `incoming` is the
    /// session about to become resident (never chosen as a victim).
    fn make_room(&mut self, incoming: Option<u64>) -> Result<(), ServeError> {
        let cap = self.config.max_resident.max(1);
        while self.resident_count() >= cap {
            let victim = self
                .sessions
                .iter()
                .filter(|(id, e)| e.resident.is_some() && Some(**id) != incoming)
                // Idle sessions (no queued work) evict before busy ones;
                // among peers, least recently touched goes first.
                .min_by_key(|(_, e)| (!e.tickets.is_empty(), e.touch))
                .map(|(id, _)| *id);
            match victim {
                Some(id) => self.evict(id)?,
                None => break, // only the incoming session is resident
            }
        }
        Ok(())
    }

    /// Spills a session's state to disk and drops its arenas. Idempotent:
    /// a session whose disk image is current is simply dropped (or left
    /// as-is if already non-resident).
    fn evict(&mut self, sid: u64) -> Result<(), ServeError> {
        let path = self.spill_path(sid);
        let entry = self.sessions.get_mut(&sid).expect("session exists");
        let Some(session) = entry.resident.take() else {
            return Ok(()); // already on disk
        };
        if !entry.spilled {
            let bytes = snapshot_to_bytes(&session.export_state())?;
            if let Err(e) = std::fs::write(&path, bytes) {
                // Keep the session resident rather than lose its state.
                entry.resident = Some(session);
                return Err(ServeError::Io(e.to_string()));
            }
            entry.spilled = true;
        }
        self.evictions += 1;
        Ok(())
    }

    /// Rebuilds an evicted session from its spill file (making room under
    /// the resident cap first).
    fn ensure_resident(&mut self, sid: u64) -> Result<(), ServeError> {
        if !self.sessions.contains_key(&sid) {
            return Err(ServeError::UnknownSession(sid));
        }
        if self.sessions[&sid].resident.is_some() {
            return Ok(());
        }
        self.make_room(Some(sid))?;
        let bytes = std::fs::read(self.spill_path(sid))?;
        let state = snapshot_from_bytes(&bytes)?;
        let spec = self.sessions[&sid].spec;
        let builder = Session::resume(state)?.workload(spec.build());
        let session = self.finish_build(builder);
        let touch = self.tick();
        let entry = self.sessions.get_mut(&sid).expect("session exists");
        entry.resident = Some(session);
        entry.touch = touch;
        self.rehydrations += 1;
        Ok(())
    }

    /// A checkpoint image at the current generation boundary. Evicted
    /// sessions are served from their spill file — a checkpoint does not
    /// force rehydration.
    fn checkpoint(&mut self, sid: u64) -> Result<Vec<u8>, ServeError> {
        let entry = self
            .sessions
            .get(&sid)
            .ok_or(ServeError::UnknownSession(sid))?;
        match &entry.resident {
            Some(session) => Ok(snapshot_to_bytes(&session.export_state())?),
            None => Ok(std::fs::read(self.spill_path(sid))?),
        }
    }

    fn stats(&self) -> ServerStats {
        let resident = self.resident_count() as u64;
        let sessions = self.sessions.len() as u64;
        ServerStats {
            sessions,
            resident,
            evicted: sessions - resident,
            generations: self.generations,
            evictions: self.evictions,
            rehydrations: self.rehydrations,
            max_sessions: self.config.max_sessions as u64,
            max_resident: self.config.max_resident as u64,
            dropped_events: self.dropped_events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genesys_neat::NeatConfig;

    fn config() -> NeatConfig {
        NeatConfig::builder(2, 1).pop_size(12).build().unwrap()
    }

    fn submit(client: &Client, seed: u64) -> u64 {
        match client
            .call(Request::Submit {
                seed,
                workload: WorkloadSpec::Synthetic,
                config: Box::new(config()),
            })
            .unwrap()
        {
            Reply::Submitted { session, .. } => session,
            other => panic!("unexpected reply {other:?}"),
        }
    }

    fn step(client: &Client, session: u64, generations: u32) -> u64 {
        match client
            .call(Request::Step {
                session,
                generations,
            })
            .unwrap()
        {
            Reply::Stepped { generation, .. } => generation,
            other => panic!("unexpected reply {other:?}"),
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("genesys-serve-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn submit_step_checkpoint_matches_direct_session() {
        let server = Server::start(ServerConfig::new(temp_dir("direct"))).unwrap();
        let client = server.client();
        let sid = submit(&client, 42);
        assert_eq!(step(&client, sid, 3), 3);

        let Reply::Snapshot { image, .. } =
            client.call(Request::Checkpoint { session: sid }).unwrap()
        else {
            panic!("expected snapshot");
        };
        let mut direct = Session::builder(config(), 42)
            .unwrap()
            .workload(WorkloadSpec::Synthetic.build())
            .build();
        direct.run(3);
        let direct_image = snapshot_to_bytes(&direct.export_state()).unwrap();
        assert_eq!(image, direct_image, "server-mediated run is byte-identical");
    }

    #[test]
    fn eviction_under_resident_cap_is_bit_identical() {
        let dir = temp_dir("evict");
        let server = Server::start(ServerConfig::new(dir).max_resident(1)).unwrap();
        let client = server.client();
        let a = submit(&client, 7);
        let b = submit(&client, 8);
        // Interleave: every switch forces an eviction under cap 1.
        for _ in 0..3 {
            step(&client, a, 1);
            step(&client, b, 1);
        }
        let Reply::Stats(stats) = client.call(Request::Stats).unwrap() else {
            panic!("expected stats");
        };
        assert!(stats.evictions >= 2, "cap 1 with 2 sessions must evict");
        assert!(stats.rehydrations >= 2);
        assert_eq!(stats.resident, 1);

        for (sid, seed) in [(a, 7), (b, 8)] {
            let Reply::Snapshot { image, .. } =
                client.call(Request::Checkpoint { session: sid }).unwrap()
            else {
                panic!("expected snapshot");
            };
            let mut direct = Session::builder(config(), seed)
                .unwrap()
                .workload(WorkloadSpec::Synthetic.build())
                .build();
            direct.run(3);
            assert_eq!(
                image,
                snapshot_to_bytes(&direct.export_state()).unwrap(),
                "session {sid} diverged across eviction"
            );
        }
    }

    #[test]
    fn admission_cap_rejects_with_typed_error() {
        let server = Server::start(ServerConfig::new(temp_dir("admit")).max_sessions(2)).unwrap();
        let client = server.client();
        submit(&client, 1);
        submit(&client, 2);
        let err = client
            .call(Request::Submit {
                seed: 3,
                workload: WorkloadSpec::Synthetic,
                config: Box::new(config()),
            })
            .unwrap_err();
        assert!(matches!(err, ServeError::ServerFull { live: 2, cap: 2 }));
        assert_eq!(err.code(), 201);
    }

    #[test]
    fn unknown_sessions_and_shutdown_are_typed() {
        let server = Server::start(ServerConfig::new(temp_dir("unknown"))).unwrap();
        let client = server.client();
        assert!(matches!(
            client.call(Request::Checkpoint { session: 99 }),
            Err(ServeError::UnknownSession(99))
        ));
        assert!(matches!(
            client.call(Request::Step {
                session: 99,
                generations: 1
            }),
            Err(ServeError::UnknownSession(99))
        ));
        drop(server);
        assert!(matches!(
            client.call(Request::Stats),
            Err(ServeError::Disconnected)
        ));
    }

    #[test]
    fn observe_drains_the_event_ring() {
        let server = Server::start(ServerConfig::new(temp_dir("observe")).event_buffer(2)).unwrap();
        let client = server.client();
        let sid = submit(&client, 5);
        step(&client, sid, 4);
        let Reply::Events { events, .. } = client
            .call(Request::Observe {
                session: sid,
                max: 10,
            })
            .unwrap()
        else {
            panic!("expected events");
        };
        // Ring of 2: only the last two generations survive.
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].stats.generation, 2);
        assert_eq!(events[1].stats.generation, 3);
        let Reply::Events { events, .. } = client
            .call(Request::Observe {
                session: sid,
                max: 10,
            })
            .unwrap()
        else {
            panic!("expected events");
        };
        assert!(events.is_empty(), "observe drains");
    }

    #[test]
    fn overflow_drops_are_counted_in_stats() {
        let server = Server::start(ServerConfig::new(temp_dir("dropped")).event_buffer(2)).unwrap();
        let client = server.client();
        let sid = submit(&client, 5);
        // 5 generations into a 2-slot ring with no observer: 3 events
        // silently fall off the front — the stats counter must say so.
        step(&client, sid, 5);
        let Reply::Stats(stats) = client.call(Request::Stats).unwrap() else {
            panic!("expected stats");
        };
        assert_eq!(stats.dropped_events, 3);
        // Draining resets nothing: the counter is cumulative.
        let _ = client.call(Request::Observe {
            session: sid,
            max: 10,
        });
        step(&client, sid, 1);
        let Reply::Stats(stats) = client.call(Request::Stats).unwrap() else {
            panic!("expected stats");
        };
        assert_eq!(stats.dropped_events, 3, "drained ring does not drop");
    }

    #[test]
    fn explicit_evict_is_idempotent_and_busy_guarded() {
        let server = Server::start(ServerConfig::new(temp_dir("explicit"))).unwrap();
        let client = server.client();
        let sid = submit(&client, 11);
        step(&client, sid, 2);
        for _ in 0..2 {
            let Reply::Evicted { session } = client.call(Request::Evict { session: sid }).unwrap()
            else {
                panic!("expected evicted");
            };
            assert_eq!(session, sid);
        }
        // Checkpoint of an evicted session reads the spill file.
        let Reply::Snapshot { image, .. } =
            client.call(Request::Checkpoint { session: sid }).unwrap()
        else {
            panic!("expected snapshot");
        };
        assert!(snapshot_from_bytes(&image).is_ok());
        // Stepping rehydrates transparently and continues bit-identically.
        step(&client, sid, 1);
        let Reply::Stats(stats) = client.call(Request::Stats).unwrap() else {
            panic!("expected stats");
        };
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.rehydrations, 1);
    }

    #[test]
    fn resume_verb_continues_a_checkpoint_bit_identically() {
        let server = Server::start(ServerConfig::new(temp_dir("resume"))).unwrap();
        let client = server.client();
        let sid = submit(&client, 17);
        step(&client, sid, 2);
        let Reply::Snapshot { image, .. } =
            client.call(Request::Checkpoint { session: sid }).unwrap()
        else {
            panic!("expected snapshot");
        };
        let Reply::Submitted {
            session: resumed,
            generation,
        } = client
            .call(Request::Resume {
                workload: WorkloadSpec::Synthetic,
                snapshot: image,
            })
            .unwrap()
        else {
            panic!("expected submitted");
        };
        assert_ne!(resumed, sid);
        assert_eq!(generation, 2);
        step(&client, sid, 2);
        step(&client, resumed, 2);
        let a = client.call(Request::Checkpoint { session: sid }).unwrap();
        let b = client
            .call(Request::Checkpoint { session: resumed })
            .unwrap();
        let (Reply::Snapshot { image: ia, .. }, Reply::Snapshot { image: ib, .. }) = (a, b) else {
            panic!("expected snapshots");
        };
        assert_eq!(ia, ib, "migrated session tracks the original");
        // Corrupt snapshots are typed errors.
        assert!(matches!(
            client.call(Request::Resume {
                workload: WorkloadSpec::Synthetic,
                snapshot: vec![0xAB; 31],
            }),
            Err(ServeError::Snapshot(_))
        ));
    }
}
