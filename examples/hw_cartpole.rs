//! Hardware-in-the-loop evolution: the GeneSys SoC evolves CartPole.
//!
//! Unlike `quickstart.rs` (software NEAT), every child genome here is
//! produced by the EvE PE pipeline — crossover, perturbation, delete-gene
//! and add-gene engines operating on 64-bit quantized gene words — and
//! every generation reports the cycle and energy accounting of the
//! walkthrough in Section IV-B of the paper. The **same session driver**
//! runs both: only the backend passed to `Session::on` differs.
//!
//! Run with: `cargo run --release --example hw_cartpole`

use genesys::gym::{EnvKind, EpisodeEvaluator};
use genesys::neat::{NeatConfig, Session};
use genesys::soc::{GenesysSoc, SocConfig};

fn main() {
    let neat = NeatConfig::builder(4, 1)
        .pop_size(96)
        .target_fitness(Some(195.0))
        .build()
        .expect("valid config");
    let soc_config = SocConfig::default(); // 256 EvE PEs, 32×32 ADAM, 1.5 MB SRAM
    println!(
        "GeneSys SoC: {} EvE PEs, {} MACs, {:.2} mm^2, {:.0} mW roofline\n",
        soc_config.num_eve_pes,
        soc_config.adam.num_macs(),
        soc_config.area_mm2(),
        soc_config.roofline_power_mw(),
    );
    let mut session = Session::on(GenesysSoc::new(soc_config, neat, 7), 7)
        .workload(EpisodeEvaluator::new(EnvKind::CartPole))
        .build();

    println!("gen | max fit | genes | inf cycles | evo cycles | energy (uJ) | EvE rounds");
    let mut converged = false;
    let mut last = None;
    for _ in 0..40 {
        let stats = session.step();
        let r = session
            .backend()
            .last_report()
            .expect("step records a report")
            .clone();
        println!(
            "{:>3} | {:>7.1} | {:>5} | {:>10} | {:>10} | {:>11.2} | {:>10}",
            r.generation,
            r.max_fitness,
            r.total_genes,
            r.inference.cycles,
            r.evolution.cycles,
            r.energy.total(),
            r.evolution.rounds,
        );
        last = Some(r);
        let target = session.backend().neat_config().target_fitness;
        if target.is_some_and(|t| stats.max_fitness >= t) {
            converged = true;
            break;
        }
    }
    let last = last.expect("at least one generation");
    println!(
        "\nper-generation wall time at 200 MHz: inference {:.3} ms, evolution {:.4} ms",
        last.inference_runtime_s * 1e3,
        last.evolution_runtime_s * 1e3,
    );
    println!(
        "ADAM utilization {:.1}%, gene-merge repairs: {:?}",
        last.inference.adam.utilization * 100.0,
        last.evolution.drops,
    );
    if converged {
        println!("\ntarget fitness reached — evolution happened entirely in 'hardware'.");
    } else {
        println!("\ngeneration budget exhausted (stochastic — rerun with another seed).");
    }
}
