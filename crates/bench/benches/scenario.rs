//! Continual-learning scenario costs at megapopulation scale: the
//! population diagnostics now computed inside *every*
//! `GenerationStats::collect` (genome-buffer LZ entropy + unique-genome
//! hashing at pop 10⁴), one whole task-sequence generation at the same
//! population (the denominator the <5 % diagnostics-overhead budget in
//! `docs/scenarios.md` is measured against — the `scenario` smoke bin
//! asserts the ratio), the drifted-environment wrapper against the raw
//! episode, and one fitness-matrix probe row. The bench-regression gate
//! pins all four so diagnostics or drift overhead cannot quietly grow
//! into the evolution loop.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use genesys_gym::{episode_into, EnvKind, RolloutScratch};
use genesys_neat::trace::OpCounters;
use genesys_neat::{
    Genome, InnovationTracker, NeatConfig, Network, PopulationDiagnostics, Session, XorWow,
};
use genesys_scenario::{
    adapted_episode, AdapterScratch, DriftSchedule, DriftedEnv, Task, TaskPlan, TaskSequence,
};

const POP: usize = 10_000;

/// A structurally diverged pop-10⁴ genome buffer — the input
/// `PopulationDiagnostics::collect` sees every generation.
fn megapopulation(pop: usize) -> Vec<Genome> {
    let c = NeatConfig::builder(8, 1).pop_size(pop).build().unwrap();
    let mut rng = XorWow::seed_from_u64_value(42);
    let mut innov = InnovationTracker::new(c.first_hidden_id());
    let mut ops = OpCounters::new();
    let mut genomes: Vec<Genome> = (0..pop as u64)
        .map(|k| Genome::initial(k, &c, &mut rng))
        .collect();
    for (i, g) in genomes.iter_mut().enumerate() {
        if i % 5 == 0 {
            for _ in 0..3 {
                g.mutate_add_node(&mut innov, &mut rng, &mut ops);
                g.mutate_attributes(&c, &mut rng, &mut ops);
            }
        }
    }
    genomes
}

/// A long single-task plan: `Session::step` iterations stay inside one
/// task so every bench sample prices the same work.
fn cartpole_plan() -> TaskPlan {
    TaskPlan::new(77, vec![Task::new(EnvKind::CartPole, 1_000_000)])
}

fn bench_scenario(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario");

    // The observability tax: entropy + unique-genome hashing over a
    // pop-10⁴ genome buffer. Runs inside every generation since the
    // diagnostics landed on `GenerationStats`.
    let genomes = megapopulation(POP);
    group.bench_with_input(
        BenchmarkId::new("diagnostics_collect", POP),
        &POP,
        |b, _| {
            b.iter(|| PopulationDiagnostics::collect(black_box(&genomes)));
        },
    );

    // The denominator: one whole evolved generation (episodes through
    // the io-adapter path + speciation + reproduction + diagnostics) at
    // the same population.
    let mut config = cartpole_plan().neat_config();
    config.pop_size = POP;
    let mut session = Session::builder(config, 7)
        .expect("valid scenario config")
        .workload(TaskSequence::new(cartpole_plan()))
        .build();
    group.bench_with_input(BenchmarkId::new("generation_step", POP), &POP, |b, _| {
        b.iter(|| session.step());
    });

    // Sensor-gain drift wrapper vs the raw environment: the per-episode
    // price of nonstationarity (one multiply per observation dimension
    // per step).
    let net = {
        let c = EnvKind::CartPole.neat_config();
        let mut rng = XorWow::seed_from_u64_value(3);
        Network::from_genome(&Genome::initial(0, &c, &mut rng)).unwrap()
    };
    let mut rollout = RolloutScratch::new();
    group.bench_with_input(BenchmarkId::new("episode_raw", "cartpole"), &(), |b, _| {
        b.iter(|| {
            let mut env = EnvKind::CartPole.make(9);
            episode_into(&net, env.as_mut(), &mut rollout)
        });
    });
    let adapter = cartpole_plan().adapter(0);
    let mut scratch = AdapterScratch::new();
    group.bench_with_input(
        BenchmarkId::new("episode_drifted", "cartpole"),
        &(),
        |b, _| {
            b.iter(|| {
                let mut env = DriftedEnv::new(EnvKind::CartPole.make(9), 77, 1);
                adapted_episode(&net, &mut env, &adapter, &mut scratch)
            });
        },
    );

    // One fitness-matrix probe row: the champion evaluated on every task
    // of a three-family curriculum (what a `MetricsRecorder` pays at
    // each task boundary).
    let curriculum = TaskPlan::new(
        77,
        vec![
            Task::new(EnvKind::CartPole, 4),
            Task::new(EnvKind::Acrobot, 4).with_drift(DriftSchedule::Sudden { at: 2 }),
            Task::new(EnvKind::LunarLander, 4),
        ],
    );
    let probe_net = {
        let c = curriculum.neat_config();
        let mut rng = XorWow::seed_from_u64_value(5);
        Network::from_genome(&Genome::initial(0, &c, &mut rng)).unwrap()
    };
    group.bench_with_input(BenchmarkId::new("probe_row", "3_tasks"), &(), |b, _| {
        b.iter(|| {
            (0..curriculum.tasks().len())
                .map(|j| curriculum.probe_fitness(&probe_net, j, 2, 9))
                .sum::<f64>()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_scenario);
criterion_main!(benches);
