//! Stress and edge-case tests: capacity spills, degenerate selections,
//! extreme configurations — the failure modes a downstream user will hit.

use genesys::gym::{CartPole, Environment};
use genesys::neat::{
    Genome, LayerConfig, LayerGenome, NeatConfig, Network, Population, SpeciesSet, XorWow,
};
use genesys::soc::{
    allocate_pes, select_parents, AllocPolicy, EveEngine, GenesysSoc, GenomeBuffer, NocKind,
    PeConfig, SocConfig, SramConfig,
};

#[test]
fn oversized_population_spills_to_dram_but_still_works() {
    // Shrink the genome buffer until the generation cannot fit: reads must
    // split between SRAM and DRAM, energy must rise, nothing crashes.
    let tiny = SramConfig {
        banks: 2,
        depth: 16, // 32 words = 4 genomes worth of genes
        ..SramConfig::default()
    };
    let mut buffer = GenomeBuffer::new(tiny);
    buffer.set_resident(1000);
    buffer.read_genes(10_000);
    assert!(buffer.stats().dram_accesses > 0, "spill must be charged");
    assert!(buffer.stats().reads > 0, "resident fraction still served");
    let spill_energy = buffer.energy_uj();

    let mut big = GenomeBuffer::new(SramConfig::default());
    big.set_resident(1000);
    big.read_genes(10_000);
    assert!(spill_energy > 10.0 * big.energy_uj(), "DRAM must dominate");
}

#[test]
fn selection_with_uniform_fitness_still_fills_population() {
    let config = NeatConfig::builder(3, 1).pop_size(20).build().unwrap();
    let mut rng = XorWow::seed_from_u64_value(1);
    let mut genomes: Vec<Genome> = (0..20u64)
        .map(|k| Genome::initial(k, &config, &mut rng))
        .collect();
    for g in &mut genomes {
        g.set_fitness(5.0); // everyone identical
    }
    let mut species = SpeciesSet::new();
    let plans = select_parents(&genomes, &mut species, &config, 0, &mut rng);
    assert_eq!(plans.len(), 20);
}

#[test]
fn selection_with_negative_fitness_works() {
    // MountainCar-style all-negative rewards.
    let config = NeatConfig::builder(2, 1).pop_size(16).build().unwrap();
    let mut rng = XorWow::seed_from_u64_value(2);
    let mut genomes: Vec<Genome> = (0..16u64)
        .map(|k| Genome::initial(k, &config, &mut rng))
        .collect();
    for (i, g) in genomes.iter_mut().enumerate() {
        g.set_fitness(-200.0 + i as f64);
    }
    let mut species = SpeciesSet::new();
    let plans = select_parents(&genomes, &mut species, &config, 0, &mut rng);
    assert_eq!(plans.len(), 16);
    for p in plans.iter().filter(|p| !p.is_elite) {
        // Parents still come from the top of the (negative) range.
        assert!(genomes[p.fit_parent].fitness().unwrap() >= -190.0);
    }
}

#[test]
fn single_pe_engine_handles_a_whole_generation() {
    let config = NeatConfig::builder(3, 1).pop_size(12).build().unwrap();
    let mut rng = XorWow::seed_from_u64_value(3);
    let mut genomes: Vec<Genome> = (0..12u64)
        .map(|k| Genome::initial(k, &config, &mut rng))
        .collect();
    for (i, g) in genomes.iter_mut().enumerate() {
        g.set_fitness(i as f64);
    }
    let mut species = SpeciesSet::new();
    let plans = select_parents(&genomes, &mut species, &config, 0, &mut rng);
    let schedule = allocate_pes(&plans, 1, AllocPolicy::Greedy);
    let mut engine = EveEngine::new(1, PeConfig::from_neat(&config, 5), NocKind::PointToPoint, 4);
    let mut buffer = GenomeBuffer::new(SramConfig::default());
    let mut key = 100;
    let report = engine.reproduce(&genomes, &plans, &schedule, &mut buffer, &mut key);
    assert_eq!(report.children.len(), 12);
    let non_elite = plans.iter().filter(|p| !p.is_elite).count();
    assert_eq!(report.rounds, non_elite, "one PE = one child per round");
}

#[test]
fn tiny_population_of_two_survives_many_generations() {
    let config = NeatConfig::builder(2, 1)
        .pop_size(2)
        .elitism(1)
        .min_species_size(1)
        .build()
        .unwrap();
    let mut pop = Population::new(config, 5);
    for _ in 0..30 {
        let stats = pop.evolve_once(|net| net.activate(&[0.5, 0.5])[0]);
        assert_eq!(pop.genomes().len(), 2);
        assert!(stats.max_fitness.is_finite());
    }
}

#[test]
fn soc_with_one_pe_and_one_genome_per_species_runs() {
    let neat = NeatConfig::builder(4, 1)
        .pop_size(4)
        .elitism(1)
        .min_species_size(1)
        .build()
        .unwrap();
    let mut soc = GenesysSoc::new(SocConfig::default().with_num_eve_pes(1), neat, 6);
    let mut factory = |i: usize| -> Box<dyn Environment> { Box::new(CartPole::new(i as u64)) };
    for _ in 0..3 {
        let report = soc.run_generation(&mut factory);
        assert_eq!(soc.genomes().len(), 4);
        assert!(report.evolution.rounds >= 1);
    }
}

#[test]
fn extreme_mutation_rates_never_break_invariants() {
    let config = NeatConfig::builder(3, 2)
        .pop_size(10)
        .conn_add_prob(1.0)
        .conn_delete_prob(1.0)
        .node_add_prob(1.0)
        .node_delete_prob(1.0)
        .weight_mutate_rate(1.0)
        .build()
        .unwrap();
    let mut pop = Population::new(config, 7);
    for _ in 0..15 {
        pop.evolve_once(|net| net.activate(&[0.1, 0.2, 0.3]).iter().sum());
        for g in pop.genomes() {
            assert!(g.validate().is_ok());
        }
    }
}

#[test]
fn zero_structural_mutation_preserves_minimal_topology() {
    let config = NeatConfig::builder(3, 1)
        .pop_size(10)
        .conn_add_prob(0.0)
        .conn_delete_prob(0.0)
        .node_add_prob(0.0)
        .node_delete_prob(0.0)
        .build()
        .unwrap();
    let mut pop = Population::new(config, 8);
    for _ in 0..10 {
        pop.evolve_once(|net| net.activate(&[0.1, 0.2, 0.3])[0]);
    }
    for g in pop.genomes() {
        assert_eq!(g.num_nodes(), 4, "weights-only evolution keeps topology");
        assert_eq!(g.num_conns(), 3);
    }
}

#[test]
fn layer_genome_extremes() {
    let config = LayerConfig::new(1, 1);
    let mut rng = XorWow::seed_from_u64_value(9);
    let mut g = LayerGenome::minimal(0);
    let mut ops = genesys::neat::trace::OpCounters::new();
    // Hammer mutations; the expressed genome must stay valid throughout.
    for _ in 0..300 {
        g.mutate(&config, &mut rng, &mut ops);
    }
    let expressed = g.express(&config).unwrap();
    assert!(expressed.validate().is_ok());
    let net = Network::from_genome(&expressed).unwrap();
    assert!(net.activate(&[1.0])[0].is_finite());
}

#[test]
fn genome_buffer_capacity_matches_atari_working_set() {
    // Paper claim: the 1.5 MB buffer holds every workload's generation.
    // Our biggest initial working set: pop 150 Atari = 150 × 257 genes.
    let sram = SramConfig::default();
    let atari_generation_words = 150 * 257 * 2; // parents + children
    assert!(
        atari_generation_words < sram.capacity_words(),
        "{} words must fit in {}",
        atari_generation_words,
        sram.capacity_words()
    );
}
