//! Asterix: a lane-runner RAM machine.
//!
//! Objects stream horizontally across eight lanes. The player hops
//! between lanes and columns collecting tankards (+50) while avoiding
//! lyres (lose a life). Five actions: noop, up, down, left, right.

use super::{RamGame, RAM_SIZE};
use genesys_neat::XorWow;

const LANES: usize = 8;
const COLS: u8 = 16;
const MAX_OBJECTS: usize = 8;
const GOOD_SCORE: f64 = 50.0;

#[derive(Debug, Clone, Copy, Default)]
struct Object {
    lane: u8,
    x: u8,
    /// +1 moving right, -1 moving left.
    dir: i8,
    /// True = collectible tankard, false = deadly lyre.
    good: bool,
    live: bool,
}

/// The Asterix game state.
#[derive(Debug, Clone)]
pub struct Asterix {
    rng: XorWow,
    player: (u8, u8), // (lane, column)
    objects: [Object; MAX_OBJECTS],
    lives: u8,
    score: f64,
    tick: u32,
}

impl Asterix {
    /// Creates a game seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Asterix {
            rng: XorWow::seed_from_u64_value(seed ^ 0xA57E_2100),
            player: (LANES as u8 / 2, COLS / 2),
            objects: [Object::default(); MAX_OBJECTS],
            lives: 3,
            score: 0.0,
            tick: 0,
        }
    }

    fn spawn(&mut self) {
        if let Some(slot) = self.objects.iter_mut().find(|o| !o.live) {
            let from_left = self.rng.chance(0.5);
            *slot = Object {
                lane: self.rng.below(LANES) as u8,
                x: if from_left { 0 } else { COLS - 1 },
                dir: if from_left { 1 } else { -1 },
                good: self.rng.chance(0.6),
                live: true,
            };
        }
    }
}

impl RamGame for Asterix {
    fn name(&self) -> &'static str {
        "Asterix_ram_v0"
    }

    fn n_actions(&self) -> usize {
        5
    }

    fn restart(&mut self) {
        self.player = (LANES as u8 / 2, COLS / 2);
        self.objects = [Object::default(); MAX_OBJECTS];
        self.lives = 3;
        self.score = 0.0;
        self.tick = 0;
    }

    fn tick(&mut self, action: usize) -> f64 {
        if self.game_over() {
            return 0.0;
        }
        let before = self.score;
        match action {
            1 => self.player.0 = self.player.0.saturating_sub(1),
            2 => self.player.0 = (self.player.0 + 1).min(LANES as u8 - 1),
            3 => self.player.1 = self.player.1.saturating_sub(1),
            4 => self.player.1 = (self.player.1 + 1).min(COLS - 1),
            _ => {}
        }
        // Spawn pressure grows slightly with time.
        if self.tick.is_multiple_of(5) || (self.tick.is_multiple_of(3) && self.tick > 500) {
            self.spawn();
        }
        for obj in &mut self.objects {
            if !obj.live {
                continue;
            }
            let nx = obj.x as i16 + i16::from(obj.dir);
            if nx < 0 || nx >= i16::from(COLS) {
                obj.live = false;
                continue;
            }
            obj.x = nx as u8;
            if (obj.lane, obj.x) == self.player {
                obj.live = false;
                if obj.good {
                    self.score += GOOD_SCORE;
                } else {
                    self.lives = self.lives.saturating_sub(1);
                }
            }
        }
        self.tick += 1;
        self.score - before
    }

    fn game_over(&self) -> bool {
        self.lives == 0
    }

    fn write_ram(&self, ram: &mut [u8; RAM_SIZE]) {
        ram.fill(0);
        ram[0] = self.player.0;
        ram[1] = self.player.1;
        ram[2] = self.lives;
        let score = (self.score as u32).min(u32::from(u16::MAX));
        ram[3] = (score & 0xFF) as u8;
        ram[4] = (score >> 8) as u8;
        ram[5] = (self.tick & 0xFF) as u8;
        for (i, o) in self.objects.iter().enumerate() {
            ram[8 + i] = o.lane;
            ram[16 + i] = o.x;
            ram[24 + i] = o.dir as u8;
            ram[32 + i] = u8::from(o.good);
            ram[40 + i] = u8::from(o.live);
        }
    }

    fn score(&self) -> f64 {
        self.score
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn player_moves_within_grid() {
        let mut game = Asterix::new(1);
        for _ in 0..20 {
            game.tick(1);
        }
        assert_eq!(game.player.0, 0);
        for _ in 0..20 {
            game.tick(2);
        }
        assert_eq!(game.player.0, LANES as u8 - 1);
    }

    #[test]
    fn collecting_a_good_object_scores() {
        let mut game = Asterix::new(2);
        game.objects[0] = Object {
            lane: game.player.0,
            x: game.player.1 - 1,
            dir: 1,
            good: true,
            live: true,
        };
        let r = game.tick(0);
        assert_eq!(r, GOOD_SCORE);
        assert!(!game.objects[0].live);
    }

    #[test]
    fn touching_a_lyre_costs_a_life() {
        let mut game = Asterix::new(3);
        game.objects[0] = Object {
            lane: game.player.0,
            x: game.player.1 - 1,
            dir: 1,
            good: false,
            live: true,
        };
        game.tick(0);
        assert_eq!(game.lives, 2);
    }

    #[test]
    fn objects_expire_at_the_borders() {
        let mut game = Asterix::new(4);
        game.objects[0] = Object {
            lane: 0,
            x: COLS - 1,
            dir: 1,
            good: true,
            live: true,
        };
        game.tick(0);
        assert!(!game.objects[0].live);
    }

    #[test]
    fn random_play_runs_long_and_scores_something() {
        let mut game = Asterix::new(5);
        let mut rng = XorWow::seed_from_u64_value(99);
        let mut total = 0.0;
        for _ in 0..3000 {
            total += game.tick(rng.below(5));
            if game.game_over() {
                break;
            }
        }
        assert!(total >= 0.0);
    }

    #[test]
    fn ram_layout_is_stable() {
        let game = Asterix::new(6);
        let mut ram = [0u8; RAM_SIZE];
        game.write_ram(&mut ram);
        assert_eq!(ram[0], LANES as u8 / 2);
        assert_eq!(ram[1], COLS / 2);
        assert_eq!(ram[2], 3);
    }
}
