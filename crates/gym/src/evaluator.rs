//! Session workloads for the environment suite.
//!
//! These are the [`Evaluator`] implementations a `genesys_neat::Session`
//! drives: [`EpisodeEvaluator`] rolls one (or more) episodes of a Table I
//! environment per genome, and [`DriftingEvaluator`] runs the paper's
//! continuous-learning scenario on the nonstationary
//! [`DriftingCartPole`]. Both honour the session determinism contract —
//! every episode seed and drift regime is a pure function of the
//! [`EvalContext`] — so fitness is bit-identical at any worker count and
//! across checkpoint/resume.

use crate::nonstationary::DriftingCartPole;
use crate::{
    episode_batch_into, episode_into, episode_rollout_with, episode_seed, EnvKind, Environment,
    RolloutBatchScratch, RolloutScratch,
};
use genesys_neat::{EvalContext, Evaluation, Evaluator, Network, WorkerLocal};

/// Env-rollout workload: each genome earns its fitness from episodes of
/// `kind`, seeded by [`episode_seed`]`(base_seed, generation, index)`.
///
/// Rollout buffers are pooled per worker (one [`RolloutScratch`] per
/// concurrent thread, reused across every episode and generation), so the
/// steady-state evaluation hot loop performs zero heap allocations per
/// environment step — the same property `run_workload` had before the
/// session API.
///
/// # Batched evaluation
///
/// With [`batch`](EpisodeEvaluator::batch)` > 1` (the
/// `NeatConfig::eval_batch` knob), multi-episode evaluations run their
/// episodes in lockstep lanes through [`episode_batch_into`], amortizing
/// the network graph walk across the batch. The batched regime gives
/// **each episode its own freshly seeded environment** (seeds derived
/// from the evaluation seed by [`episode_seed`]), whereas the scalar
/// multi-episode path resets one persistent environment between
/// episodes — so `batch > 1` selects a different (still deterministic
/// and worker-count-invariant) episode stream. Batched buffers are
/// pooled per worker exactly like the scalar ones (one
/// [`RolloutBatchScratch`] per concurrent thread).
#[derive(Debug)]
pub struct EpisodeEvaluator {
    kind: EnvKind,
    episodes: usize,
    batch: usize,
    scratch: WorkerLocal<RolloutScratch>,
    batch_scratch: WorkerLocal<RolloutBatchScratch>,
}

impl EpisodeEvaluator {
    /// One episode of `kind` per genome per generation.
    pub fn new(kind: EnvKind) -> Self {
        EpisodeEvaluator {
            kind,
            episodes: 1,
            batch: 1,
            scratch: WorkerLocal::new(RolloutScratch::new),
            batch_scratch: WorkerLocal::new(RolloutBatchScratch::new),
        }
    }

    /// Averages fitness over `episodes` episodes per evaluation (each with
    /// its own derived seed). Panics if `episodes == 0`.
    pub fn episodes(mut self, episodes: usize) -> Self {
        assert!(episodes > 0, "at least one episode required");
        self.episodes = episodes;
        self
    }

    /// Runs multi-episode evaluations in lockstep lanes of up to `batch`
    /// episodes (see the type docs for the seeding trade). `batch == 1`
    /// keeps the scalar path. Panics if `batch == 0`.
    pub fn batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "at least one lane required");
        self.batch = batch;
        self
    }

    /// The workload's environment kind.
    pub fn kind(&self) -> EnvKind {
        self.kind
    }
}

impl Evaluator for EpisodeEvaluator {
    fn evaluate(&self, ctx: EvalContext, net: &Network) -> Evaluation {
        let env_seed = episode_seed(ctx.base_seed, ctx.generation, ctx.index);
        if self.batch > 1 {
            // Batched regime: episodes run in lockstep lanes, each lane
            // its own environment with a seed derived from the
            // evaluation seed (generation component 0, episode index as
            // the index component).
            return self.batch_scratch.with(|buffers| {
                let mut total = 0.0;
                let mut env_steps = 0;
                let mut envs: Vec<Box<dyn Environment>> =
                    Vec::with_capacity(self.batch.min(self.episodes));
                let mut episode = 0usize;
                while episode < self.episodes {
                    envs.clear();
                    while episode < self.episodes && envs.len() < self.batch {
                        envs.push(self.kind.make(episode_seed(env_seed, 0, episode as u64)));
                        episode += 1;
                    }
                    let (fitness, steps) = episode_batch_into(net, &mut envs, buffers);
                    total += fitness;
                    env_steps += steps;
                }
                Evaluation {
                    fitness: total / self.episodes as f64,
                    env_steps,
                }
            });
        }
        self.scratch.with(|buffers| {
            if self.episodes == 1 {
                let (fitness, env_steps) = episode_rollout_with(self.kind, net, env_seed, buffers);
                Evaluation { fitness, env_steps }
            } else {
                // Multi-episode evaluation: one environment, reset per
                // episode (the SoC's `episodes_per_eval` semantics).
                let mut env = self.kind.make(env_seed);
                let mut total = 0.0;
                let mut env_steps = 0;
                for _ in 0..self.episodes {
                    let (fitness, steps) = episode_into(net, env.as_mut(), buffers);
                    total += fitness;
                    env_steps += steps;
                }
                Evaluation {
                    fitness: total / self.episodes as f64,
                    env_steps,
                }
            }
        })
    }
}

/// The continuous-learning workload: every genome faces the same drifting
/// cart-pole world, whose physics regime advances with the global episode
/// index.
///
/// # Drift phase and checkpoints
///
/// The episode index of an evaluation is the pure function
/// `episode_offset + generation * episodes_per_generation + index`, so the
/// drift schedule depends only on *where* in the run an evaluation sits —
/// never on evaluation order (this replaces the order-dependent
/// `AtomicU64` episode counter the original continuous-learning example
/// used). The phase is serialized across power cycles: `episode_offset`
/// travels in [`Evaluator::state`] and the generation counter in the
/// session's `EvolutionState`, so a resumed run faces exactly the regimes
/// the uninterrupted run would have.
#[derive(Debug)]
pub struct DriftingEvaluator {
    world_seed: u64,
    period: u64,
    episodes_per_generation: u64,
    episode_offset: u64,
    scratch: WorkerLocal<RolloutScratch>,
}

impl DriftingEvaluator {
    /// Creates the workload: regimes advance every `period` episodes, and
    /// each generation consumes `episodes_per_generation` episodes
    /// (normally the population size — one episode per genome).
    pub fn new(world_seed: u64, period: u64, episodes_per_generation: u64) -> Self {
        DriftingEvaluator {
            world_seed,
            period: period.max(1),
            episodes_per_generation,
            episode_offset: 0,
            scratch: WorkerLocal::new(RolloutScratch::new),
        }
    }

    /// Starts the drift at a nonzero phase (e.g. to continue a world that
    /// already ran outside this session).
    pub fn with_episode_offset(mut self, offset: u64) -> Self {
        self.episode_offset = offset;
        self
    }

    /// The serialized drift phase (see the type docs).
    pub fn episode_offset(&self) -> u64 {
        self.episode_offset
    }

    /// Global episode index of evaluation `(generation, index)`.
    pub fn episode_at(&self, generation: u64, index: u64) -> u64 {
        self.episode_offset + generation * self.episodes_per_generation + index
    }

    /// An environment positioned at the first episode of `generation`,
    /// for probing the regime in force (reporting, not evaluation).
    pub fn probe(&self, generation: u64) -> DriftingCartPole {
        DriftingCartPole::new(self.world_seed, self.period)
            .with_episode(self.episode_at(generation, 0))
    }
}

impl Evaluator for DriftingEvaluator {
    fn evaluate(&self, ctx: EvalContext, net: &Network) -> Evaluation {
        let episode = self.episode_at(ctx.generation, ctx.index);
        let mut env = DriftingCartPole::new(self.world_seed, self.period).with_episode(episode);
        let (fitness, env_steps) = self
            .scratch
            .with(|buffers| episode_into(net, &mut env, buffers));
        Evaluation { fitness, env_steps }
    }

    fn state(&self) -> u64 {
        self.episode_offset
    }

    fn restore_state(&mut self, state: u64) {
        self.episode_offset = state;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genesys_neat::{NeatConfig, Session};

    #[test]
    fn episode_evaluator_matches_manual_rollout() {
        let config = EnvKind::CartPole.neat_config();
        let genome = genesys_neat::Genome::initial(
            0,
            &config,
            &mut genesys_neat::XorWow::seed_from_u64_value(3),
        );
        let net = Network::from_genome(&genome).unwrap();
        let eval = EpisodeEvaluator::new(EnvKind::CartPole);
        let ctx = EvalContext {
            base_seed: 9,
            generation: 2,
            index: 5,
        };
        let got = eval.evaluate(ctx, &net);
        let seed = episode_seed(9, 2, 5);
        let want = crate::episode_rollout(EnvKind::CartPole, &net, seed);
        assert_eq!((got.fitness, got.env_steps), want);
    }

    #[test]
    fn multi_episode_average_matches_rollout_semantics() {
        let config = EnvKind::MountainCar.neat_config();
        let genome = genesys_neat::Genome::initial(
            0,
            &config,
            &mut genesys_neat::XorWow::seed_from_u64_value(5),
        );
        let net = Network::from_genome(&genome).unwrap();
        let eval = EpisodeEvaluator::new(EnvKind::MountainCar).episodes(3);
        let ctx = EvalContext {
            base_seed: 1,
            generation: 0,
            index: 0,
        };
        let got = eval.evaluate(ctx, &net);
        let mut env = EnvKind::MountainCar.make(episode_seed(1, 0, 0));
        let want = crate::rollout(&net, env.as_mut(), 3);
        assert_eq!(got.fitness, want);
        assert!(got.env_steps > 0);
    }

    #[test]
    fn batched_evaluator_matches_manual_lane_reference() {
        let config = EnvKind::CartPole.neat_config();
        let genome = genesys_neat::Genome::initial(
            0,
            &config,
            &mut genesys_neat::XorWow::seed_from_u64_value(7),
        );
        let net = Network::from_genome(&genome).unwrap();
        let episodes = 5;
        let eval = EpisodeEvaluator::new(EnvKind::CartPole)
            .episodes(episodes)
            .batch(3);
        let ctx = EvalContext {
            base_seed: 4,
            generation: 1,
            index: 2,
        };
        let got = eval.evaluate(ctx, &net);
        // Reference: each episode on its own env with the documented
        // derived seed, summed scalar rollouts.
        let env_seed = episode_seed(4, 1, 2);
        let mut scratch = RolloutScratch::new();
        let mut total = 0.0;
        let mut steps = 0u64;
        for e in 0..episodes {
            let mut env = EnvKind::CartPole.make(episode_seed(env_seed, 0, e as u64));
            let (fit, s) = episode_into(&net, env.as_mut(), &mut scratch);
            total += fit;
            steps += s;
        }
        assert_eq!(got.fitness.to_bits(), (total / episodes as f64).to_bits());
        assert_eq!(got.env_steps, steps);
        // Deterministic across repeated evaluations and batch widths
        // (lane count is a throughput knob, not a semantic one).
        let again = eval.evaluate(ctx, &net);
        assert_eq!(got.fitness.to_bits(), again.fitness.to_bits());
        let wide = EpisodeEvaluator::new(EnvKind::CartPole)
            .episodes(episodes)
            .batch(64)
            .evaluate(ctx, &net);
        assert_eq!(got.fitness.to_bits(), wide.fitness.to_bits());
        assert_eq!(got.env_steps, wide.env_steps);
    }

    #[test]
    fn scalar_batch_of_one_is_unchanged() {
        let config = EnvKind::MountainCar.neat_config();
        let genome = genesys_neat::Genome::initial(
            0,
            &config,
            &mut genesys_neat::XorWow::seed_from_u64_value(5),
        );
        let net = Network::from_genome(&genome).unwrap();
        let ctx = EvalContext {
            base_seed: 1,
            generation: 0,
            index: 0,
        };
        let scalar = EpisodeEvaluator::new(EnvKind::MountainCar)
            .episodes(3)
            .evaluate(ctx, &net);
        let batch_one = EpisodeEvaluator::new(EnvKind::MountainCar)
            .episodes(3)
            .batch(1)
            .evaluate(ctx, &net);
        assert_eq!(scalar.fitness.to_bits(), batch_one.fitness.to_bits());
        assert_eq!(scalar.env_steps, batch_one.env_steps);
    }

    #[test]
    fn drift_phase_is_pure_in_generation_and_index() {
        let eval = DriftingEvaluator::new(7, 300, 96);
        assert_eq!(eval.episode_at(0, 0), 0);
        assert_eq!(eval.episode_at(3, 10), 3 * 96 + 10);
        let offset = DriftingEvaluator::new(7, 300, 96).with_episode_offset(500);
        assert_eq!(offset.episode_at(3, 10), 500 + 3 * 96 + 10);
        assert_eq!(offset.state(), 500);
    }

    #[test]
    fn drift_phase_survives_checkpoint_resume() {
        let config = NeatConfig::builder(4, 1).pop_size(12).build().unwrap();
        let pop = config.pop_size as u64;
        let make_eval = || DriftingEvaluator::new(4242, 30, pop).with_episode_offset(17);

        let mut full = Session::builder(config.clone(), 8)
            .unwrap()
            .workload(make_eval())
            .build();
        let full_report = full.run(6);

        let mut head = Session::builder(config, 8)
            .unwrap()
            .workload(make_eval())
            .build();
        head.run(3);
        let state = head.export_state();
        assert_eq!(state.workload_state(), 17, "drift phase serialized");
        // Resume with a *default-phase* evaluator: the checkpoint restores
        // the offset.
        let mut resumed = Session::resume(state)
            .unwrap()
            .workload(DriftingEvaluator::new(4242, 30, pop))
            .build();
        assert_eq!(resumed.workload().episode_offset(), 17);
        let tail = resumed.run(3);
        assert_eq!(&full_report.history[3..], &tail.history[..]);
        assert_eq!(full.genomes(), resumed.genomes());
    }

    #[test]
    fn probe_reports_the_regime_evaluations_face() {
        let eval = DriftingEvaluator::new(11, 5, 10);
        // Generation 1 starts at episode 10 -> regime 2 (episode/period).
        assert_eq!(eval.probe(1).regime(), 2);
        assert_eq!(eval.probe(0).regime(), 0);
    }
}
