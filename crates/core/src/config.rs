//! SoC-level configuration (the "GeneSys parameters" table of Fig 8(a)).

use crate::adam::AdamConfig;
use crate::energy::TechModel;
use crate::noc::NocKind;
use crate::selector::AllocPolicy;
use crate::sram::SramConfig;

/// Full GeneSys SoC configuration.
///
/// The default reproduces the paper's synthesized design point: 256 EvE
/// PEs, a 32×32 ADAM, 48×4096×64 b SRAM, 200 MHz, multicast-tree NoC.
#[derive(Debug, Clone, PartialEq)]
pub struct SocConfig {
    /// Number of EvE PEs (paper design point: 256; swept 2–512 in Figs
    /// 8/11).
    pub num_eve_pes: usize,
    /// ADAM geometry.
    pub adam: AdamConfig,
    /// Genome buffer geometry and energies.
    pub sram: SramConfig,
    /// Gene-distribution interconnect.
    pub noc_kind: NocKind,
    /// PE allocation policy (GLR-aware greedy by default).
    pub alloc_policy: AllocPolicy,
    /// Technology calibration.
    pub tech: TechModel,
    /// Episodes averaged per fitness evaluation.
    pub episodes_per_eval: usize,
    /// PRNG seed for the hardware PRNG block.
    pub prng_seed: u64,
}

impl Default for SocConfig {
    fn default() -> Self {
        SocConfig {
            num_eve_pes: 256,
            adam: AdamConfig::default(),
            sram: SramConfig::default(),
            noc_kind: NocKind::MulticastTree,
            alloc_policy: AllocPolicy::Greedy,
            tech: TechModel::default(),
            episodes_per_eval: 1,
            prng_seed: 0xD00D_FEED,
        }
    }
}

impl SocConfig {
    /// Builder-style override of the PE count.
    pub fn with_num_eve_pes(mut self, n: usize) -> Self {
        self.num_eve_pes = n;
        self
    }

    /// Builder-style override of the NoC kind.
    pub fn with_noc(mut self, kind: NocKind) -> Self {
        self.noc_kind = kind;
        self
    }

    /// Builder-style override of the allocation policy.
    pub fn with_alloc_policy(mut self, policy: AllocPolicy) -> Self {
        self.alloc_policy = policy;
        self
    }

    /// Builder-style override of the PRNG seed.
    pub fn with_prng_seed(mut self, seed: u64) -> Self {
        self.prng_seed = seed;
        self
    }

    /// SoC area at this configuration (Fig 8(c)).
    pub fn area_mm2(&self) -> f64 {
        self.tech
            .area_mm2(
                self.num_eve_pes,
                self.adam.num_macs(),
                self.sram.capacity_bytes() as f64 / (1024.0 * 1024.0),
            )
            .total()
    }

    /// Roofline power at this configuration (Fig 8(b)).
    pub fn roofline_power_mw(&self) -> f64 {
        self.tech.roofline_power_mw(self.num_eve_pes).total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_design_point() {
        let c = SocConfig::default();
        assert_eq!(c.num_eve_pes, 256);
        assert_eq!(c.adam.num_macs(), 1024);
        assert_eq!(c.sram.capacity_bytes(), 1_572_864);
        assert_eq!(c.noc_kind, NocKind::MulticastTree);
        assert!((c.area_mm2() - 2.45).abs() < 0.25);
        assert!((c.roofline_power_mw() - 947.5).abs() < 50.0);
    }

    #[test]
    fn builders_override_fields() {
        let c = SocConfig::default()
            .with_num_eve_pes(64)
            .with_noc(NocKind::PointToPoint)
            .with_prng_seed(7);
        assert_eq!(c.num_eve_pes, 64);
        assert_eq!(c.noc_kind, NocKind::PointToPoint);
        assert_eq!(c.prng_seed, 7);
    }
}
