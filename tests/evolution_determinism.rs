//! The evolution-phase determinism contract, end to end: one full
//! `evolve_once` — evaluation, parallel speciation, parallel plan/execute
//! reproduction, serial innovation assignment — must be **bit-identical**
//! at any worker count, and the two-pass innovation assignment must match
//! the direct serial tracker path on arbitrary genomes.

use genesys::neat::reproduction::{child_seed, plan_offspring, ChildKind};
use genesys::neat::trace::OpCounters;
use genesys::neat::{
    Executor, Genome, InnovationTracker, NeatConfig, Network, NodeId, Population, SpeciesSet,
    SplitRecorder, XorWow,
};
use proptest::prelude::*;
use std::sync::Arc;

/// A cheap, index-seeded fitness so every genome gets a distinct,
/// deterministic score regardless of evaluation order.
fn indexed_fitness(index: usize, net: &Network) -> f64 {
    let inputs: Vec<f64> = (0..net.num_inputs())
        .map(|i| ((index + i) % 7) as f64 * 0.3 - 0.9)
        .collect();
    net.activate(&inputs).iter().sum::<f64>() + (index % 13) as f64 * 1e-3
}

fn config(pop: usize) -> NeatConfig {
    NeatConfig::builder(4, 2)
        .pop_size(pop)
        .build()
        .expect("valid config")
}

fn species_fingerprint(species: &SpeciesSet) -> Vec<(u32, Vec<usize>, u64, usize)> {
    species
        .iter()
        .map(|s| {
            (
                s.id.0,
                s.members.clone(),
                s.adjusted_fitness.to_bits(),
                s.representative.num_genes(),
            )
        })
        .collect()
}

/// `evolve_once` produces bit-identical genomes, species and traces at
/// 1, 4 and 8 workers — the acceptance test of the staged pipeline.
#[test]
fn evolve_once_bit_identical_at_1_4_8_workers() {
    const GENERATIONS: usize = 6;
    let run = |workers: Option<usize>| {
        let mut pop = Population::new(config(48), 2024);
        if let Some(w) = workers {
            pop.set_executor(Arc::new(Executor::new(w)));
        }
        let mut traces = Vec::new();
        for _ in 0..GENERATIONS {
            pop.evolve_once_indexed(indexed_fitness);
            traces.push(pop.last_trace().expect("reproduced").clone());
        }
        let genomes: Vec<Genome> = pop.genomes().to_vec();
        (genomes, species_fingerprint(pop.species()), traces)
    };

    let (serial_genomes, serial_species, serial_traces) = run(None);
    for workers in [1usize, 4, 8] {
        let (genomes, species, traces) = run(Some(workers));
        assert_eq!(
            serial_genomes, genomes,
            "genomes diverged at {workers} workers"
        );
        assert_eq!(
            serial_species, species,
            "species diverged at {workers} workers"
        );
        assert_eq!(
            serial_traces, traces,
            "traces diverged at {workers} workers"
        );
    }
}

/// Same-seed populations stay in lockstep even when one runs serial and
/// the other shares a pool across generations (pool reuse must not leak
/// state between batches).
#[test]
fn shared_pool_across_generations_stays_in_lockstep() {
    let pool = Arc::new(Executor::new(4));
    let mut serial = Population::new(config(32), 7);
    let mut parallel = Population::new(config(32), 7);
    parallel.set_executor(Arc::clone(&pool));
    for generation in 0..5 {
        let a = serial.evolve_once_indexed(indexed_fitness);
        let b = parallel.evolve_once_indexed(indexed_fitness);
        assert_eq!(a.max_fitness.to_bits(), b.max_fitness.to_bits());
        assert_eq!(a.total_genes, b.total_genes);
        assert_eq!(a.ops, b.ops, "generation {generation}");
        assert_eq!(serial.genomes(), parallel.genomes());
    }
    assert_eq!(pool.threads_spawned(), 4, "no hidden thread growth");
}

/// The planning pass is a pure function of `(population, rng, seeds)`:
/// replaying it yields the identical plan, and every child kind maps onto
/// a buildable slot.
#[test]
fn plan_offspring_replays_identically() {
    let c = config(40);
    let mut rng = XorWow::seed_from_u64_value(5);
    let mut genomes: Vec<Genome> = (0..40u64)
        .map(|k| Genome::initial(k, &c, &mut rng))
        .collect();
    for (i, g) in genomes.iter_mut().enumerate() {
        g.set_fitness((i % 9) as f64);
    }
    let mut species = SpeciesSet::new();
    species.speciate(&genomes, &c, 0);
    species.share_fitness(&genomes);

    let plan_once = || {
        let mut r = XorWow::seed_from_u64_value(11);
        let mut key = 100;
        plan_offspring(&genomes, &species, &c, &mut r, 4, &mut key, 77)
    };
    let a = plan_once();
    let b = plan_once();
    assert_eq!(a, b);
    assert_eq!(a.len(), 40);
    for p in &a {
        assert_eq!(p.seed, child_seed(77, 4, p.child_index as u64));
        if p.kind == ChildKind::Crossover {
            assert!(
                genomes[p.parent1].fitness() >= genomes[p.parent2].fitness(),
                "parent1 must be the fitter crossover parent"
            );
        } else {
            assert_eq!(p.parent1, p.parent2, "asexual kinds have one parent");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Two-pass innovation assignment (per-child `SplitRecorder` with
    /// provisional ids + serial resolution through the tracker) produces
    /// **bit-identical genomes and tracker state** to the old serial path
    /// that mutated against the global tracker directly, on arbitrarily
    /// evolved genomes.
    #[test]
    fn planned_innovation_assignment_matches_direct_serial_path(
        seed in any::<u64>(),
        warmup in 0usize..25,
        mutations in 1usize..12,
    ) {
        let mut c = config(8);
        // Make structural ops likely so splits actually happen.
        c.node_add_prob = 0.6;
        c.conn_add_prob = 0.5;
        c.node_delete_prob = 0.2;
        c.conn_delete_prob = 0.2;
        let mut rng = XorWow::seed_from_u64_value(seed);
        let mut tracker_a = InnovationTracker::new(c.first_hidden_id());
        let mut genome = Genome::initial(0, &c, &mut rng);
        let mut ops = OpCounters::new();
        for _ in 0..warmup {
            genome.mutate(&c, &mut tracker_a, &mut rng, &mut ops);
        }
        tracker_a.begin_generation();
        let mut tracker_b = tracker_a.clone();

        // Path A: the old serial semantics — mutate straight against the
        // global tracker.
        let mut direct = genome.clone();
        let mut rng_a = XorWow::seed_from_u64_value(seed ^ 0xD1CE);
        let mut ops_a = OpCounters::new();
        for _ in 0..mutations {
            direct.mutate(&c, &mut tracker_a, &mut rng_a, &mut ops_a);
        }

        // Path B: the staged semantics — record splits against provisional
        // ids, then resolve through the tracker in request order.
        let mut staged = genome.clone();
        let mut rng_b = XorWow::seed_from_u64_value(seed ^ 0xD1CE);
        let mut ops_b = OpCounters::new();
        let mut recorder = SplitRecorder::new();
        for _ in 0..mutations {
            staged.mutate(&c, &mut recorder, &mut rng_b, &mut ops_b);
        }
        let map: Vec<(NodeId, NodeId)> = recorder
            .into_requests()
            .into_iter()
            .map(|(key, provisional)| (provisional, tracker_b.node_for_split(key)))
            .collect();
        staged.remap_new_nodes(&map);

        prop_assert_eq!(&direct, &staged);
        prop_assert_eq!(ops_a, ops_b);
        prop_assert_eq!(tracker_a.next_node_id(), tracker_b.next_node_id());
        prop_assert!(staged.validate().is_ok());
    }

    /// Full staged reproduction agrees with itself across worker counts on
    /// random populations (random sizes, fitness landscapes and seeds).
    #[test]
    fn staged_reproduction_worker_invariant_on_random_populations(
        seed in any::<u64>(),
        pop in 6usize..40,
        workers in 2usize..6,
    ) {
        let c = config(pop);
        let mut rng = XorWow::seed_from_u64_value(seed);
        let mut genomes: Vec<Genome> = (0..pop as u64)
            .map(|k| Genome::initial(k, &c, &mut rng))
            .collect();
        let mut innov_seed = InnovationTracker::new(c.first_hidden_id());
        let mut ops = OpCounters::new();
        for (i, g) in genomes.iter_mut().enumerate() {
            if i % 3 == 0 {
                g.mutate(&c, &mut innov_seed, &mut rng, &mut ops);
            }
            g.set_fitness(((i * 31 + 7) % 11) as f64);
        }
        let mut species = SpeciesSet::new();
        species.speciate(&genomes, &c, 0);
        species.share_fitness(&genomes);

        let run = |pool: Option<&Executor>| {
            let mut innov = InnovationTracker::new(innov_seed.next_node_id());
            let mut r = XorWow::seed_from_u64_value(seed ^ 0xBEEF);
            let mut key = 10_000;
            let mut offspring = Vec::new();
            let trace = genesys::neat::reproduction::reproduce_into(
                &genomes, &species, &c, &mut innov, &mut r, 0, &mut key, seed, pool,
                &mut offspring, None,
            );
            (offspring, trace)
        };
        let (serial, serial_trace) = run(None);
        let pool = Executor::new(workers);
        let (parallel, parallel_trace) = run(Some(&pool));
        prop_assert_eq!(serial, parallel);
        prop_assert_eq!(serial_trace, parallel_trace);
    }
}
