//! ADAM model cost: wavefront timing extraction and functional
//! activation, for the interface sizes of Table I.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genesys_core::{inference_timing, AdamConfig};
use genesys_neat::trace::OpCounters;
use genesys_neat::{Genome, InnovationTracker, NeatConfig, Network, XorWow};

fn evolved(inputs: usize, outputs: usize, rounds: usize) -> Genome {
    let config = NeatConfig::builder(inputs, outputs).build().unwrap();
    let mut rng = XorWow::seed_from_u64_value(3);
    let mut innov = InnovationTracker::new(config.first_hidden_id());
    let mut g = Genome::initial(0, &config, &mut rng);
    let mut ops = OpCounters::new();
    for _ in 0..rounds {
        g.mutate_add_node(&mut innov, &mut rng, &mut ops);
        g.mutate_add_conn(&mut rng, &mut ops);
        g.mutate_attributes(&config, &mut rng, &mut ops);
    }
    g
}

fn bench_timing(c: &mut Criterion) {
    let mut group = c.benchmark_group("adam_inference_timing");
    for (label, inputs, rounds) in [
        ("cartpole", 4usize, 4usize),
        ("lander", 8, 8),
        ("atari", 128, 16),
    ] {
        let genome = evolved(inputs, 1, rounds);
        let net = Network::from_genome(&genome).unwrap();
        let cfg = AdamConfig::default();
        group.bench_with_input(BenchmarkId::from_parameter(label), &genome, |b, _g| {
            b.iter(|| inference_timing(&net, &cfg));
        });
    }
    group.finish();
}

fn bench_activate(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_activate");
    for (label, inputs, rounds) in [("cartpole", 4usize, 4usize), ("atari", 128, 16)] {
        let genome = evolved(inputs, 1, rounds);
        let net = Network::from_genome(&genome).unwrap();
        let obs = vec![0.3f64; inputs];
        group.bench_with_input(BenchmarkId::from_parameter(label), &obs, |b, o| {
            b.iter(|| net.activate(o));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_timing, bench_activate);
criterion_main!(benches);
