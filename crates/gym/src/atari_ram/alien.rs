//! Alien: a maze-chase RAM machine.
//!
//! The player walks a 13×11 maze collecting eggs while three aliens give
//! chase. Five actions: noop, up, down, left, right. Eating every egg
//! clears the level for a bonus and respawns the board.

use super::{RamGame, RAM_SIZE};
use genesys_neat::XorWow;

const W: usize = 13;
const H: usize = 11;
const N_ALIENS: usize = 3;
const EGG_SCORE: f64 = 10.0;
const CLEAR_SCORE: f64 = 100.0;

/// The Alien game state.
#[derive(Debug, Clone)]
pub struct Alien {
    rng: XorWow,
    player: (u8, u8),
    aliens: [(u8, u8); N_ALIENS],
    eggs: [u16; H], // bitmap per row, bit x = egg present
    lives: u8,
    score: f64,
    tick: u32,
    level: u8,
}

/// Deterministic maze: border walls plus a lattice of pillars.
fn is_wall(x: usize, y: usize) -> bool {
    if x == 0 || y == 0 || x == W - 1 || y == H - 1 {
        return true;
    }
    x.is_multiple_of(2) && y.is_multiple_of(2)
}

impl Alien {
    /// Creates a game seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        let mut game = Alien {
            rng: XorWow::seed_from_u64_value(seed ^ 0xA11E_0000),
            player: (1, 1),
            aliens: [(0, 0); N_ALIENS],
            eggs: [0; H],
            lives: 3,
            score: 0.0,
            tick: 0,
            level: 0,
        };
        game.spawn_level();
        game
    }

    fn spawn_level(&mut self) {
        self.level = self.level.wrapping_add(1);
        self.player = (1, 1);
        // Aliens start at the three far corners.
        self.aliens = [
            (W as u8 - 2, H as u8 - 2),
            (W as u8 - 2, 1),
            (1, H as u8 - 2),
        ];
        for y in 0..H {
            let mut row = 0u16;
            for x in 0..W {
                if !is_wall(x, y) && (x, y) != (1, 1) {
                    row |= 1 << x;
                }
            }
            self.eggs[y] = row;
        }
    }

    fn eggs_remaining(&self) -> u32 {
        self.eggs.iter().map(|r| r.count_ones()).sum()
    }

    fn try_move(pos: (u8, u8), action: usize) -> (u8, u8) {
        let (x, y) = (pos.0 as i32, pos.1 as i32);
        let (nx, ny) = match action {
            1 => (x, y - 1),
            2 => (x, y + 1),
            3 => (x - 1, y),
            4 => (x + 1, y),
            _ => (x, y),
        };
        if nx < 0 || ny < 0 || nx >= W as i32 || ny >= H as i32 || is_wall(nx as usize, ny as usize)
        {
            pos
        } else {
            (nx as u8, ny as u8)
        }
    }

    fn chase_step(&mut self, i: usize) {
        let (ax, ay) = self.aliens[i];
        let (px, py) = self.player;
        // 3-in-4 chance to chase greedily, else a random legal move —
        // keeps the pursuit beatable.
        let action = if self.rng.below(4) < 3 {
            if ax != px && (self.rng.chance(0.5) || ay == py) {
                if px > ax {
                    4
                } else {
                    3
                }
            } else if py > ay {
                2
            } else {
                1
            }
        } else {
            1 + self.rng.below(4)
        };
        self.aliens[i] = Self::try_move((ax, ay), action);
    }

    fn collide(&self) -> bool {
        self.aliens.contains(&self.player)
    }
}

impl RamGame for Alien {
    fn name(&self) -> &'static str {
        "Alien_ram_v0"
    }

    fn n_actions(&self) -> usize {
        5
    }

    fn restart(&mut self) {
        self.lives = 3;
        self.score = 0.0;
        self.tick = 0;
        self.level = 0;
        self.spawn_level();
    }

    fn tick(&mut self, action: usize) -> f64 {
        if self.game_over() {
            return 0.0;
        }
        let before = self.score;
        self.player = Self::try_move(self.player, action);
        // Eat the egg under the player.
        let (px, py) = (self.player.0 as usize, self.player.1 as usize);
        if self.eggs[py] & (1 << px) != 0 {
            self.eggs[py] &= !(1 << px);
            self.score += EGG_SCORE;
        }
        // Aliens move every other frame (player is faster).
        if self.tick.is_multiple_of(2) {
            for i in 0..N_ALIENS {
                self.chase_step(i);
            }
        }
        if self.collide() {
            self.lives = self.lives.saturating_sub(1);
            self.player = (1, 1);
            self.aliens = [
                (W as u8 - 2, H as u8 - 2),
                (W as u8 - 2, 1),
                (1, H as u8 - 2),
            ];
        }
        if self.eggs_remaining() == 0 {
            self.score += CLEAR_SCORE;
            self.spawn_level();
        }
        self.tick += 1;
        self.score - before
    }

    fn game_over(&self) -> bool {
        self.lives == 0
    }

    fn write_ram(&self, ram: &mut [u8; RAM_SIZE]) {
        ram.fill(0);
        ram[0] = self.player.0;
        ram[1] = self.player.1;
        ram[2] = self.lives;
        let score = (self.score as u32).min(u32::from(u16::MAX));
        ram[3] = (score & 0xFF) as u8;
        ram[4] = (score >> 8) as u8;
        ram[5] = (self.tick & 0xFF) as u8;
        ram[6] = self.level;
        for (i, &(x, y)) in self.aliens.iter().enumerate() {
            ram[8 + 2 * i] = x;
            ram[9 + 2 * i] = y;
        }
        for (y, &row) in self.eggs.iter().enumerate() {
            ram[16 + 2 * y] = (row & 0xFF) as u8;
            ram[17 + 2 * y] = (row >> 8) as u8;
        }
    }

    fn score(&self) -> f64 {
        self.score
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maze_has_open_cells_and_walls() {
        assert!(is_wall(0, 0));
        assert!(!is_wall(1, 1));
        assert!(is_wall(2, 2));
        assert!(!is_wall(1, 2));
    }

    #[test]
    fn moving_over_eggs_scores() {
        let mut game = Alien::new(1);
        let r = game.tick(4); // step right onto an egg cell
        assert_eq!(r, EGG_SCORE);
    }

    #[test]
    fn walls_block_movement() {
        let mut game = Alien::new(2);
        game.tick(1); // up into the border: blocked
        assert_eq!(game.player, (1, 1));
        game.tick(3); // left into the border: blocked
        assert_eq!(game.player, (1, 1));
    }

    #[test]
    fn aliens_eventually_catch_an_idle_player() {
        let mut game = Alien::new(3);
        for _ in 0..2000 {
            game.tick(0);
            if game.game_over() {
                break;
            }
        }
        assert!(game.lives < 3, "idle player should be caught at least once");
    }

    #[test]
    fn collision_costs_a_life_and_resets_positions() {
        let mut game = Alien::new(4);
        game.aliens[0] = game.player;
        let lives_before = game.lives;
        game.tick(0);
        assert_eq!(game.lives, lives_before - 1);
        assert_eq!(game.player, (1, 1));
    }

    #[test]
    fn egg_count_decreases_monotonically_within_level() {
        let mut game = Alien::new(5);
        let start = game.eggs_remaining();
        game.tick(4);
        game.tick(2);
        assert!(game.eggs_remaining() < start);
    }

    #[test]
    fn ram_encodes_positions() {
        let game = Alien::new(6);
        let mut ram = [0u8; RAM_SIZE];
        game.write_ram(&mut ram);
        assert_eq!((ram[0], ram[1]), (1, 1));
        assert_eq!(ram[2], 3);
    }
}
