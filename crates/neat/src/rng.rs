//! XOR-WOW pseudo-random number generator.
//!
//! The GeneSys PEs are fed by a hardware PRNG implementing the **XORWOW**
//! algorithm (Marsaglia 2003), "also used within NVIDIA GPUs" per the paper
//! (Section IV-C4). Implementing it here, in the algorithm crate, lets the
//! software evolution path and the cycle-level EvE model draw from the same
//! stream, which keeps hardware/software comparisons trace-identical.

use rand::{Error as RandError, RngCore, SeedableRng};

/// Marsaglia's XORWOW generator: five words of xorshift state plus a Weyl
/// counter. Period `2^192 - 2^32`.
///
/// Implements [`rand::RngCore`] so it can be used anywhere in the `rand`
/// ecosystem, and exposes [`XorWow::next_u8`] matching the paper's
/// "8-bit random numbers every cycle" PRNG interface.
///
/// ```
/// use genesys_neat::XorWow;
/// let mut a = XorWow::seed_from_u64_value(7);
/// let mut b = XorWow::seed_from_u64_value(7);
/// assert_eq!(a.next_u32_value(), b.next_u32_value());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorWow {
    x: [u32; 5],
    counter: u32,
}

impl XorWow {
    /// Creates a generator from five state words and a counter.
    ///
    /// All-zero xorshift state is degenerate (the stream would be constant
    /// zero), so a fixed nonzero word is substituted in that case.
    pub fn from_state(state: [u32; 5], counter: u32) -> Self {
        let mut x = state;
        if x.iter().all(|&w| w == 0) {
            x[0] = 0x9E37_79B9;
        }
        XorWow { x, counter }
    }

    /// Convenience seeding from a single `u64`, using SplitMix64 to expand
    /// the seed into the five state words.
    pub fn seed_from_u64_value(seed: u64) -> Self {
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let a = next();
        let b = next();
        let c = next();
        XorWow::from_state(
            [
                a as u32,
                (a >> 32) as u32,
                b as u32,
                (b >> 32) as u32,
                c as u32,
            ],
            (c >> 32) as u32,
        )
    }

    /// Returns the generator's complete state: the five xorshift words and
    /// the Weyl counter. Feeding these back through [`XorWow::from_state`]
    /// reproduces the stream exactly — the RNG half of the session
    /// checkpoint format (`genesys_neat::session::EvolutionState`).
    pub fn state(&self) -> ([u32; 5], u32) {
        (self.x, self.counter)
    }

    /// Advances the generator and returns the next 32-bit word.
    pub fn next_u32_value(&mut self) -> u32 {
        // XORWOW per Marsaglia, "Xorshift RNGs", with a Weyl sequence added.
        let mut t = self.x[4];
        let s = self.x[0];
        self.x[4] = self.x[3];
        self.x[3] = self.x[2];
        self.x[2] = self.x[1];
        self.x[1] = s;
        t ^= t >> 2;
        t ^= t << 1;
        t ^= s ^ (s << 4);
        self.x[0] = t;
        self.counter = self.counter.wrapping_add(362_437);
        t.wrapping_add(self.counter)
    }

    /// Returns the next 8-bit value — the per-cycle output width of the
    /// hardware PRNG block feeding the EvE PEs.
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u32_value() >> 24) as u8
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        let hi = u64::from(self.next_u32_value());
        let lo = u64::from(self.next_u32_value());
        let bits53 = ((hi << 32) | lo) >> 11;
        bits53 as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `lo > hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "uniform bounds must be ordered");
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns a standard-normal sample (Box–Muller; one sample per call,
    /// second discarded to keep the stream alignment simple).
    pub fn next_gaussian(&mut self) -> f64 {
        // Avoid ln(0) by offsetting into (0, 1].
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Bernoulli draw with probability `p` of returning `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform integer in `[0, n)`. Returns 0 when `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        // Multiply-shift rejection-free mapping is fine here: the state
        // space (2^32) dwarfs every `n` used by the algorithm (≤ millions),
        // so bias is negligible for simulation purposes.
        ((u64::from(self.next_u32_value()) * n as u64) >> 32) as usize
    }
}

impl RngCore for XorWow {
    fn next_u32(&mut self) -> u32 {
        self.next_u32_value()
    }

    fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32_value()) << 32) | u64::from(self.next_u32_value())
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32_value().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), RandError> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for XorWow {
    type Seed = [u8; 24];

    fn from_seed(seed: Self::Seed) -> Self {
        let word = |i: usize| {
            u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ])
        };
        XorWow::from_state([word(0), word(1), word(2), word(3), word(4)], word(5))
    }
}

impl Default for XorWow {
    fn default() -> Self {
        XorWow::seed_from_u64_value(0xC0FF_EE11)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = XorWow::seed_from_u64_value(99);
        let mut b = XorWow::seed_from_u64_value(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u32_value(), b.next_u32_value());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorWow::seed_from_u64_value(1);
        let mut b = XorWow::seed_from_u64_value(2);
        let same = (0..64)
            .filter(|_| a.next_u32_value() == b.next_u32_value())
            .count();
        assert!(same < 4, "streams from different seeds should not match");
    }

    #[test]
    fn zero_state_is_rescued() {
        let mut z = XorWow::from_state([0; 5], 0);
        let first = z.next_u32_value();
        let second = z.next_u32_value();
        assert!(first != 0 || second != 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = XorWow::default();
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = XorWow::seed_from_u64_value(5);
        for _ in 0..10_000 {
            let v = r.uniform(-3.0, 3.0);
            assert!((-3.0..3.0).contains(&v));
        }
    }

    #[test]
    fn below_is_in_range() {
        let mut r = XorWow::seed_from_u64_value(6);
        for n in 1..200 {
            let v = r.below(n);
            assert!(v < n);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = XorWow::seed_from_u64_value(7);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn gaussian_moments() {
        let mut r = XorWow::seed_from_u64_value(8);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| r.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "gaussian mean {mean} too far from 0");
        assert!(
            (var - 1.0).abs() < 0.05,
            "gaussian variance {var} too far from 1"
        );
    }

    #[test]
    fn u8_stream_covers_range() {
        let mut r = XorWow::seed_from_u64_value(9);
        let mut seen = [false; 256];
        for _ in 0..20_000 {
            seen[r.next_u8() as usize] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() > 250);
    }

    #[test]
    fn seedable_rng_roundtrip() {
        let seed = [42u8; 24];
        let mut a = XorWow::from_seed(seed);
        let mut b = XorWow::from_seed(seed);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
