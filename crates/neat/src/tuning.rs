//! Hybrid evolution + weight tuning (the paper's Future Directions).
//!
//! "We believe that GENESYS can be run in conjunction with supervised
//! learning, with the former enabling rapid topology exploration and then
//! using conventional training to tune the weights." Backpropagation is
//! exactly what the architecture avoids, so the conventional trainer here
//! is a black-box **(1+λ) evolution strategy** on the genome's continuous
//! attributes — the same operation class the EvE perturbation engine
//! already implements, applied greedily with a decaying step size. The
//! topology is frozen; only weights, biases and responses move.

use crate::genome::Genome;
use crate::network::Network;
use crate::rng::XorWow;

/// Configuration for the (1+λ) weight tuner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuningConfig {
    /// Candidates sampled per iteration (λ).
    pub lambda: usize,
    /// Initial perturbation standard deviation.
    pub sigma: f64,
    /// Multiplicative σ decay on stagnant iterations.
    pub sigma_decay: f64,
    /// Iteration budget.
    pub iterations: usize,
    /// Probability each weight moves in a candidate.
    pub move_rate: f64,
}

impl Default for TuningConfig {
    fn default() -> Self {
        TuningConfig {
            lambda: 8,
            sigma: 0.4,
            sigma_decay: 0.9,
            iterations: 30,
            move_rate: 0.5,
        }
    }
}

/// Result of a tuning run.
#[derive(Debug, Clone)]
pub struct TuningResult {
    /// The tuned genome (same topology, new continuous attributes).
    pub genome: Genome,
    /// Fitness of the tuned genome.
    pub fitness: f64,
    /// Fitness of the input genome (for reporting the improvement).
    pub initial_fitness: f64,
    /// Iterations that improved the incumbent.
    pub improvements: usize,
}

fn perturbed(genome: &Genome, sigma: f64, move_rate: f64, rng: &mut XorWow) -> Genome {
    let nodes: Vec<_> = genome
        .nodes()
        .map(|n| {
            let mut n = *n;
            if n.node_type != crate::gene::NodeType::Input && rng.chance(move_rate) {
                n.bias += rng.next_gaussian() * sigma;
            }
            n
        })
        .collect();
    let conns: Vec<_> = genome
        .conns()
        .map(|c| {
            let mut c = *c;
            if rng.chance(move_rate) {
                c.weight += rng.next_gaussian() * sigma;
            }
            c
        })
        .collect();
    Genome::from_parts(
        genome.key(),
        genome.num_inputs(),
        genome.num_outputs(),
        nodes,
        conns,
    )
    .expect("attribute perturbation preserves structure")
}

/// Tunes the continuous attributes of `genome` against `fitness_fn` with a
/// (1+λ) evolution strategy. Topology is untouched.
pub fn tune_weights<F>(
    genome: &Genome,
    config: &TuningConfig,
    seed: u64,
    fitness_fn: F,
) -> TuningResult
where
    F: Fn(&Network) -> f64,
{
    let mut rng = XorWow::seed_from_u64_value(seed);
    let mut best = genome.clone();
    let initial_fitness = fitness_fn(&Network::from_genome(&best).expect("valid input genome"));
    let mut best_fit = initial_fitness;
    let mut sigma = config.sigma;
    let mut improvements = 0;

    for _ in 0..config.iterations {
        let mut improved = false;
        for _ in 0..config.lambda {
            let candidate = perturbed(&best, sigma, config.move_rate, &mut rng);
            let fit = fitness_fn(&Network::from_genome(&candidate).expect("structure frozen"));
            if fit > best_fit {
                best = candidate;
                best_fit = fit;
                improved = true;
            }
        }
        if improved {
            improvements += 1;
        } else {
            sigma *= config.sigma_decay;
        }
    }
    let mut genome = best;
    genome.set_fitness(best_fit);
    TuningResult {
        genome,
        fitness: best_fit,
        initial_fitness,
        improvements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NeatConfig;

    fn target_fitness(net: &Network) -> f64 {
        // Reward matching a fixed target function on a few probes.
        let probes = [[0.0, 0.0], [0.5, 0.25], [1.0, 1.0], [0.25, 0.75]];
        let mut fit = 4.0;
        for p in &probes {
            let want = 0.3 * p[0] + 0.5 * p[1];
            let got = net.activate(p)[0];
            fit -= (got - want) * (got - want);
        }
        fit
    }

    fn base_genome() -> Genome {
        let config = NeatConfig::builder(2, 1).build().unwrap();
        Genome::initial(0, &config, &mut XorWow::seed_from_u64_value(1))
    }

    #[test]
    fn tuning_improves_fitness() {
        let g = base_genome();
        let result = tune_weights(&g, &TuningConfig::default(), 7, target_fitness);
        assert!(
            result.fitness > result.initial_fitness,
            "tuning must improve: {} -> {}",
            result.initial_fitness,
            result.fitness
        );
        assert!(result.improvements > 0);
    }

    #[test]
    fn tuning_preserves_topology() {
        let g = base_genome();
        let result = tune_weights(&g, &TuningConfig::default(), 8, target_fitness);
        assert_eq!(result.genome.num_nodes(), g.num_nodes());
        assert_eq!(result.genome.num_conns(), g.num_conns());
        for (a, b) in g.conns().zip(result.genome.conns()) {
            assert_eq!(a.key, b.key);
        }
    }

    #[test]
    fn tuning_is_deterministic_per_seed() {
        let g = base_genome();
        let a = tune_weights(&g, &TuningConfig::default(), 9, target_fitness);
        let b = tune_weights(&g, &TuningConfig::default(), 9, target_fitness);
        assert_eq!(a.fitness, b.fitness);
        for (ca, cb) in a.genome.conns().zip(b.genome.conns()) {
            assert_eq!(ca.weight, cb.weight);
        }
    }

    #[test]
    fn zero_iterations_is_identity() {
        let g = base_genome();
        let config = TuningConfig {
            iterations: 0,
            ..TuningConfig::default()
        };
        let result = tune_weights(&g, &config, 10, target_fitness);
        assert_eq!(result.fitness, result.initial_fitness);
        assert_eq!(result.improvements, 0);
    }

    #[test]
    fn tuned_genome_records_its_fitness() {
        let g = base_genome();
        let result = tune_weights(&g, &TuningConfig::default(), 11, target_fitness);
        assert_eq!(result.genome.fitness(), Some(result.fitness));
    }
}
