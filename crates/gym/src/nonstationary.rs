//! Non-stationary environments: the paper's continuous-learning setting.
//!
//! GeneSys targets agents that face "the dynamically changing nature of
//! the problem" (challenge (iii) of the introduction) through continuous,
//! lifelong interaction. This wrapper makes any environment drift: after
//! every `period` episodes the underlying dynamics are perturbed (via the
//! inner environment's own seed stream), so a converged population must
//! keep re-adapting — the behaviour `examples/continuous_learning.rs`
//! demonstrates.

use crate::env::{ActionKind, Environment};

/// A drifting variant of CartPole: pole length and push force change every
/// `period` resets, within physically plausible bounds. Observation and
/// action interfaces are unchanged, so evolved genomes remain compatible —
/// only their fitness landscape moves.
#[derive(Debug, Clone)]
pub struct DriftingCartPole {
    seed: u64,
    episode: u64,
    period: u64,
    state: [f64; 4],
    steps: usize,
    done: bool,
    // Current regime.
    pole_half_length: f64,
    force_mag: f64,
    rng: genesys_neat::XorWow,
}

impl DriftingCartPole {
    /// Episode step cap (matches CartPole-v0).
    pub const MAX_STEPS: usize = 200;

    /// Creates a drifting cart-pole whose regime changes every `period`
    /// episodes.
    pub fn new(seed: u64, period: u64) -> Self {
        let mut env = DriftingCartPole {
            seed,
            episode: 0,
            period: period.max(1),
            state: [0.0; 4],
            steps: 0,
            done: false,
            pole_half_length: 0.5,
            force_mag: 10.0,
            rng: genesys_neat::XorWow::seed_from_u64_value(seed ^ 0xD21F_7000),
        };
        env.apply_regime();
        env
    }

    /// Positions the environment at a global episode index, so distributed
    /// evaluations can agree on the regime in force.
    pub fn with_episode(mut self, episode: u64) -> Self {
        self.episode = episode;
        self.apply_regime();
        self
    }

    /// The global episode index currently in force — the drift **phase**.
    /// This is the state a checkpoint must carry for the continuous-
    /// learning loop to survive a power cycle: resuming with the same
    /// `(seed, period, episode)` triple reproduces the regime schedule
    /// bit-exactly (see `genesys_gym::DriftingEvaluator`, which derives it
    /// purely from the session's generation counter and serialized offset).
    pub fn episode(&self) -> u64 {
        self.episode
    }

    /// The regime index currently in force.
    pub fn regime(&self) -> u64 {
        self.episode / self.period
    }

    /// Current (pole half-length, force magnitude).
    pub fn physics(&self) -> (f64, f64) {
        (self.pole_half_length, self.force_mag)
    }

    fn apply_regime(&mut self) {
        // Derive the regime deterministically from (seed, regime index) so
        // all population members face the same drifted world.
        let mut regime_rng = genesys_neat::XorWow::seed_from_u64_value(
            self.seed ^ self.regime().wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        self.pole_half_length = regime_rng.uniform(0.25, 1.0);
        self.force_mag = regime_rng.uniform(6.0, 14.0);
    }
}

impl Environment for DriftingCartPole {
    fn name(&self) -> &'static str {
        "DriftingCartPole"
    }

    fn observation_dim(&self) -> usize {
        4
    }

    fn action_dim(&self) -> usize {
        1
    }

    fn action_kind(&self) -> ActionKind {
        ActionKind::Discrete(2)
    }

    fn reset_into(&mut self, obs: &mut [f64]) {
        self.episode += 1;
        self.apply_regime();
        for s in &mut self.state {
            *s = self.rng.uniform(-0.05, 0.05);
        }
        self.steps = 0;
        self.done = false;
        obs.copy_from_slice(&self.state);
    }

    fn step_into(&mut self, action: &[f64], obs: &mut [f64]) -> (f64, bool) {
        assert_eq!(action.len(), 1, "DriftingCartPole takes one binary output");
        if self.done {
            obs.copy_from_slice(&self.state);
            return (0.0, true);
        }
        // Same dynamics as CartPole, parameterized by the drifted regime.
        const GRAVITY: f64 = 9.8;
        const MASS_CART: f64 = 1.0;
        const MASS_POLE: f64 = 0.1;
        const TOTAL_MASS: f64 = MASS_CART + MASS_POLE;
        const TAU: f64 = 0.02;
        let length = self.pole_half_length;
        let pole_mass_length = MASS_POLE * length;
        let force = if crate::env::binary_action(action[0]) {
            self.force_mag
        } else {
            -self.force_mag
        };
        let [x, x_dot, theta, theta_dot] = self.state;
        let cos_t = theta.cos();
        let sin_t = theta.sin();
        let temp = (force + pole_mass_length * theta_dot * theta_dot * sin_t) / TOTAL_MASS;
        let theta_acc = (GRAVITY * sin_t - cos_t * temp)
            / (length * (4.0 / 3.0 - MASS_POLE * cos_t * cos_t / TOTAL_MASS));
        let x_acc = temp - pole_mass_length * theta_acc * cos_t / TOTAL_MASS;
        self.state = [
            x + TAU * x_dot,
            x_dot + TAU * x_acc,
            theta + TAU * theta_dot,
            theta_dot + TAU * theta_acc,
        ];
        self.steps += 1;
        let fell =
            self.state[0].abs() > 2.4 || self.state[2].abs() > 12.0 * std::f64::consts::PI / 180.0;
        self.done = fell || self.steps >= Self::MAX_STEPS;
        obs.copy_from_slice(&self.state);
        (1.0, self.done)
    }

    fn max_steps(&self) -> usize {
        Self::MAX_STEPS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regimes_change_on_schedule() {
        let mut env = DriftingCartPole::new(1, 3);
        let initial = env.physics();
        // 3 episodes in regime 0.
        for _ in 0..3 {
            env.reset();
        }
        assert_eq!(env.regime(), 1);
        let drifted = env.physics();
        assert_ne!(initial, drifted, "physics must drift between regimes");
    }

    #[test]
    fn same_regime_same_physics_for_all_agents() {
        // Two instances with the same seed see identical regimes: the
        // whole population faces the same world.
        let mut a = DriftingCartPole::new(9, 2);
        let mut b = DriftingCartPole::new(9, 2);
        for _ in 0..6 {
            a.reset();
            b.reset();
            assert_eq!(a.physics(), b.physics());
        }
    }

    #[test]
    fn physics_stays_in_plausible_bounds() {
        let mut env = DriftingCartPole::new(4, 1);
        for _ in 0..50 {
            env.reset();
            let (len, force) = env.physics();
            assert!((0.25..=1.0).contains(&len));
            assert!((6.0..=14.0).contains(&force));
        }
    }

    #[test]
    fn episodes_still_terminate() {
        let mut env = DriftingCartPole::new(5, 4);
        env.reset();
        let mut steps = 0;
        while !env.step(&[1.0]).done {
            steps += 1;
            assert!(steps <= DriftingCartPole::MAX_STEPS + 1);
        }
    }

    #[test]
    fn interface_matches_cartpole() {
        let env = DriftingCartPole::new(6, 5);
        assert_eq!(env.observation_dim(), 4);
        assert_eq!(env.action_dim(), 1);
        assert_eq!(env.action_kind(), ActionKind::Discrete(2));
    }
}
