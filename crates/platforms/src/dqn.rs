//! Table II: comparing DQN (conventional RL) with the evolutionary
//! approach on an Atari-scale task.
//!
//! The paper's numbers: DQN does ~3 M MAC ops per forward pass plus ~680 K
//! gradient calculations in backprop, and needs ~50 MB of replay memory
//! (100 entries) plus ~4 MB of parameters/activations at mini-batch 32;
//! the EA does ~115 K MACs of inference and ~135 K crossover/mutations per
//! evolution step, fitting a whole generation in <1 MB.

use crate::platform::WorkloadProfile;

/// The DQN of Mnih et al. 2013 ("Playing Atari with deep reinforcement
/// learning"), as characterized in Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DqnSpec {
    /// MAC operations in one forward pass.
    pub forward_macs: u64,
    /// Gradient calculations in one backprop pass.
    pub backprop_gradients: u64,
    /// Replay memory entries kept.
    pub replay_entries: u64,
    /// Bytes per replay entry (four 84×84 frames, pre/post).
    pub replay_entry_bytes: u64,
    /// Parameter + activation bytes at the working mini-batch.
    pub param_activation_bytes: u64,
    /// Mini-batch size.
    pub minibatch: u64,
}

impl DqnSpec {
    /// The Atari DQN configuration used by Table II.
    pub fn atari() -> Self {
        DqnSpec {
            forward_macs: 3_000_000,
            backprop_gradients: 680_000,
            replay_entries: 100,
            replay_entry_bytes: 500_000, // ≈50 MB / 100 entries
            param_activation_bytes: 4_000_000,
            minibatch: 32,
        }
    }

    /// Total replay memory bytes.
    pub fn replay_bytes(&self) -> u64 {
        self.replay_entries * self.replay_entry_bytes
    }

    /// Total memory footprint bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.replay_bytes() + self.param_activation_bytes
    }

    /// Compute ops per learning step: one forward per mini-batch sample +
    /// gradients.
    pub fn ops_per_step(&self) -> u64 {
        self.forward_macs + self.backprop_gradients
    }
}

/// One comparison row of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Dimension being compared.
    pub dimension: &'static str,
    /// DQN column.
    pub dqn: String,
    /// EA column.
    pub ea: String,
}

/// Builds Table II from the DQN spec and a *measured* EA workload profile
/// (an Atari run of our NEAT implementation).
pub fn table2(dqn: &DqnSpec, ea: &WorkloadProfile) -> Vec<Table2Row> {
    let ea_inference_macs = if ea.env_steps > 0 {
        ea.inference_macs / ea.env_steps.max(1) * ea.pop_size as u64
    } else {
        0
    };
    vec![
        Table2Row {
            dimension: "Compute",
            dqn: format!(
                "{:.1}M MAC ops in forward pass, {}K gradient calculations in BP",
                dqn.forward_macs as f64 / 1e6,
                dqn.backprop_gradients / 1000
            ),
            ea: format!(
                "{}K MAC ops in inference, {}K crossover + mutations in evolution",
                ea_inference_macs / 1000,
                ea.evolution_ops / 1000
            ),
        },
        Table2Row {
            dimension: "Memory",
            dqn: format!(
                "{} MB for replay memory of {} entries, {} MB for parameters and activations given mini-batch size of {}",
                dqn.replay_bytes() / 1_000_000,
                dqn.replay_entries,
                dqn.param_activation_bytes / 1_000_000,
                dqn.minibatch
            ),
            ea: format!(
                "{:.2} MB to fit entire generation",
                ea.genesys_footprint_bytes() as f64 / 1_000_000.0
            ),
        },
        Table2Row {
            dimension: "Parallelism",
            dqn: "MAC and gradient updates can be parallelized per layer".into(),
            ea: "GLP and PLP (Sections III-C1, III-C2)".into(),
        },
        Table2Row {
            dimension: "Regularity",
            dqn: "Dense CNN with high regularity and opportunity of reuse".into(),
            ea: "Highly sparse and irregular networks".into(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atari_ea() -> WorkloadProfile {
        WorkloadProfile {
            label: "Alien-ram-v0".into(),
            pop_size: 150,
            env_steps: 150_000,
            inference_macs: 115_000_000,
            evolution_ops: 135_000,
            total_genes: 110_000,
            max_nodes: 280,
            mean_nodes: 240.0,
        }
    }

    #[test]
    fn paper_dqn_numbers() {
        let d = DqnSpec::atari();
        assert_eq!(d.forward_macs, 3_000_000);
        assert_eq!(d.backprop_gradients, 680_000);
        assert_eq!(d.replay_bytes(), 50_000_000);
        assert_eq!(d.memory_bytes(), 54_000_000);
    }

    #[test]
    fn ea_memory_under_one_mb() {
        let ea = atari_ea();
        assert!(
            ea.genesys_footprint_bytes() < 1_000_000,
            "paper: <1MB to fit entire generation"
        );
    }

    #[test]
    fn dqn_memory_dwarfs_ea_memory() {
        let d = DqnSpec::atari();
        let ea = atari_ea();
        assert!(d.memory_bytes() > 50 * ea.genesys_footprint_bytes());
    }

    #[test]
    fn table_has_four_dimensions() {
        let rows = table2(&DqnSpec::atari(), &atari_ea());
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].dimension, "Compute");
        assert!(rows[1].ea.contains("MB to fit entire generation"));
    }

    #[test]
    fn ea_compute_is_lower_than_dqn_per_step() {
        // Paper: "EA has both low memory and compute cost when compared
        // to DQN" — inference MACs per population step < DQN forward pass.
        let d = DqnSpec::atari();
        let ea = atari_ea();
        let ea_macs_per_pop_step = ea.inference_macs / ea.env_steps.max(1) * ea.pop_size as u64;
        assert!(ea_macs_per_pop_step < d.forward_macs);
    }
}
