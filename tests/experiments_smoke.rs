//! Smoke tests for the experiment harness: tiny versions of each
//! table/figure pipeline, asserting the paper's qualitative claims hold.

use genesys::gym::EnvKind;
use genesys::platforms::{table2, CpuModel, DqnSpec, GpuModel, TABLE_III};
use genesys::soc::{NocKind, SocConfig, TechModel};
use genesys_bench::{genesys_cost, run_workload};

#[test]
fn fig4_runs_show_gene_growth_potential_and_reuse() {
    let run = run_workload(EnvKind::CartPole, 6, 1, Some(32));
    assert_eq!(run.history.len(), 6);
    // Reuse statistic is populated (Fig 4(c)).
    assert!(run.history.iter().any(|s| s.fittest_parent_reuse > 1));
}

#[test]
fn fig5_atari_ops_dwarf_classic_control_ops() {
    let small = run_workload(EnvKind::CartPole, 3, 2, Some(32));
    let big = run_workload(EnvKind::Alien, 3, 2, Some(32));
    let ops_small = small.profile().evolution_ops;
    let ops_big = big.profile().evolution_ops;
    assert!(
        ops_big > 10 * ops_small,
        "Atari ops ({ops_big}) should dwarf classic control ({ops_small})"
    );
    // And both fit comfortably in the 1.5 MB genome buffer (Fig 5(b)).
    assert!(big.profile().genesys_footprint_bytes() < 1_500_000);
}

#[test]
fn fig8_design_point_matches_paper() {
    let tech = TechModel::default();
    assert!((tech.roofline_power_mw(256).total() - 947.5).abs() < 20.0);
    let area = tech.area_mm2(256, 1024, 1.5).total();
    assert!((area - 2.45).abs() < 0.15, "got {area}");
}

#[test]
fn fig9_genesys_wins_runtime_and_energy_by_orders_of_magnitude() {
    let run = run_workload(EnvKind::LunarLander, 4, 3, Some(32));
    let w = run.profile();
    let cost = genesys_cost(&run, &SocConfig::default());
    let i7 = CpuModel::i7();
    let gtx = GpuModel::gtx_1080();
    let best_baseline_inference = i7
        .inference_time_s(&w, true)
        .min(gtx.inference_gpu_b(&w).total_s());
    assert!(
        best_baseline_inference / cost.inference_s > 50.0,
        "expected ≥~2 orders, got {}x",
        best_baseline_inference / cost.inference_s
    );
    let cpu_evo_energy = i7.energy_j(i7.evolution_time_s(&w));
    assert!(
        cpu_evo_energy / cost.evolution_j > 1e3,
        "evolution energy gap too small: {}x",
        cpu_evo_energy / cost.evolution_j
    );
}

#[test]
fn fig10_memcpy_ordering_holds() {
    let run = run_workload(EnvKind::MountainCar, 4, 4, Some(32));
    let w = run.profile();
    let gtx = GpuModel::gtx_1080();
    let a = gtx.inference_gpu_a(&w).memcpy_fraction();
    let b = gtx.inference_gpu_b(&w).memcpy_fraction();
    assert!(a > 0.5, "GPU_a transfer-bound: {a}");
    assert!(b < a, "GPU_b reduces transfer share: {b} vs {a}");
    // GeneSys keeps everything on-chip.
    let cost = genesys_cost(&run, &SocConfig::default());
    let g_frac = cost.buffer_transfer_s / (cost.buffer_transfer_s + cost.inference_s);
    assert!(
        g_frac < 0.35,
        "GeneSys should not be transfer-bound: {g_frac}"
    );
}

#[test]
fn fig11_multicast_and_pe_scaling_trends() {
    let run = run_workload(EnvKind::Amidar, 3, 5, Some(48));
    let base = SocConfig::default();
    let p2p = genesys_cost(
        &run,
        &base
            .clone()
            .with_noc(NocKind::PointToPoint)
            .with_num_eve_pes(64),
    );
    let mc = genesys_cost(
        &run,
        &base
            .clone()
            .with_noc(NocKind::MulticastTree)
            .with_num_eve_pes(64),
    );
    assert!(
        mc.replay.noc.sram_reads < p2p.replay.noc.sram_reads,
        "multicast must cut SRAM reads"
    );
    let few = genesys_cost(&run, &base.clone().with_num_eve_pes(2));
    let many = genesys_cost(&run, &base.with_num_eve_pes(64));
    assert!(
        many.evolution_s < few.evolution_s / 4.0,
        "evolution is compute-bound: PEs should slash runtime ({} vs {})",
        many.evolution_s,
        few.evolution_s
    );
}

#[test]
fn table2_and_table3_are_complete() {
    assert_eq!(TABLE_III.len(), 9);
    let run = run_workload(EnvKind::Alien, 2, 6, Some(32));
    let rows = table2(&DqnSpec::atari(), &run.profile());
    assert_eq!(rows.len(), 4);
    assert!(rows[1].ea.contains("MB"));
}
