//! Cross-crate integration tests: the full GeneSys stack, software NEAT
//! vs the hardware loop, trace replay, and the experiment harness.

use genesys::gym::{rollout, CartPole, EnvKind, Environment, MountainCar};
use genesys::neat::{Genome, NeatConfig, Population, RunOutcome};
use genesys::platforms::{CpuModel, GpuModel, WorkloadProfile};
use genesys::soc::{
    decode_genome, encode_genome, replay_trace, GenesysSoc, GenomeBuffer, NocKind, SocConfig,
    SramConfig,
};
use std::sync::atomic::{AtomicU64, Ordering};

fn cartpole_fitness() -> impl Fn(&genesys::neat::Network) -> f64 + Sync {
    let seed = AtomicU64::new(0);
    move |net| {
        let s = seed.fetch_add(1, Ordering::Relaxed);
        let mut env = CartPole::new(s);
        rollout(net, &mut env, 1)
    }
}

#[test]
fn software_neat_learns_cartpole() {
    let config = NeatConfig::builder(4, 1)
        .pop_size(96)
        .target_fitness(Some(150.0))
        .build()
        .unwrap();
    let mut pop = Population::new(config, 5);
    pop.set_parallelism(4);
    let result = pop.run(cartpole_fitness(), 40);
    let best_seen = result
        .history
        .iter()
        .map(|s| s.max_fitness)
        .fold(f64::NEG_INFINITY, f64::max);
    // Either converged or made very substantial progress from the ~9-step
    // baseline of a zero-weight population.
    match result.outcome {
        RunOutcome::Converged { .. } => {}
        RunOutcome::GenerationLimit => {
            assert!(best_seen > 60.0, "no meaningful learning: best {best_seen}")
        }
    }
}

#[test]
fn hardware_loop_matches_software_interface_and_learns() {
    let neat = NeatConfig::builder(4, 1)
        .pop_size(64)
        .target_fitness(Some(150.0))
        .build()
        .unwrap();
    let mut soc = GenesysSoc::new(SocConfig::default().with_num_eve_pes(32), neat, 17);
    let mut factory = |i: usize| -> Box<dyn Environment> { Box::new(CartPole::new(i as u64)) };
    let (reports, _converged) = soc.run_until(25, &mut factory);
    let first = reports.first().unwrap().max_fitness;
    let best = reports
        .iter()
        .map(|r| r.max_fitness)
        .fold(f64::MIN, f64::max);
    assert!(
        best > first,
        "hardware evolution should improve fitness: first {first}, best {best}"
    );
    // Every generation must account energy and cycles.
    for r in &reports {
        assert!(r.energy.total() > 0.0);
        assert!(r.inference.cycles > 0);
        assert!(r.evolution.cycles > 0);
        assert!(r.memory_bytes < 1_500_000, "fits the 1.5 MB genome buffer");
    }
}

#[test]
fn evolved_population_round_trips_the_genome_buffer_encoding() {
    let config = NeatConfig::builder(2, 1).pop_size(32).build().unwrap();
    let mut pop = Population::new(config, 3);
    for _ in 0..5 {
        pop.evolve_once(|net| {
            let mut env = MountainCar::new(1);
            rollout(net, &mut env, 1)
        });
    }
    for genome in pop.genomes() {
        let words = encode_genome(genome);
        let back = decode_genome(genome.key(), 2, 1, &words).expect("valid image");
        assert_eq!(back.num_nodes(), genome.num_nodes());
        assert_eq!(back.num_conns(), genome.num_conns());
        // Discrete structure is bit-exact; continuous attributes land on
        // the fixed-point grid within codec tolerance.
        for (a, b) in genome.conns().zip(back.conns()) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.enabled, b.enabled);
            assert!((a.weight - b.weight).abs() <= 0.5 / 512.0 + 1e-12);
        }
    }
}

#[test]
fn trace_replay_is_consistent_with_the_trace() {
    let config = NeatConfig::builder(6, 2).pop_size(50).build().unwrap();
    let mut pop = Population::new(config, 9);
    let parent_sizes: Vec<usize> = pop.genomes().iter().map(Genome::num_genes).collect();
    pop.evolve_once(|net| net.activate(&[0.5; 6]).iter().sum());
    let trace = pop.last_trace().unwrap().clone();
    let child_sizes: Vec<usize> = pop.genomes().iter().map(Genome::num_genes).collect();

    let mut buffer = GenomeBuffer::new(SramConfig::default());
    let report = replay_trace(
        &trace,
        &parent_sizes,
        &child_sizes,
        16,
        NocKind::MulticastTree,
        &mut buffer,
    );
    let non_elite = trace.children.iter().filter(|c| !c.is_elite).count();
    assert_eq!(report.rounds, non_elite.div_ceil(16));
    // Every child gene is written exactly once (elites too).
    let expected_writes: u64 = trace
        .children
        .iter()
        .map(|c| {
            if c.is_elite {
                parent_sizes[c.parent1] as u64
            } else {
                child_sizes[c.child_index] as u64
            }
        })
        .sum();
    assert_eq!(buffer.stats().writes, expected_writes);
}

#[test]
fn platform_models_preserve_the_papers_ordering() {
    // On any real profile: GeneSys < GPU < CPU in inference runtime, and
    // embedded < desktop in power.
    let w = WorkloadProfile {
        label: "LunarLander_v2".into(),
        pop_size: 150,
        env_steps: 40_000,
        inference_macs: 2_000_000,
        evolution_ops: 20_000,
        total_genes: 5_000,
        max_nodes: 16,
        mean_nodes: 11.0,
    };
    let i7 = CpuModel::i7();
    let gtx = GpuModel::gtx_1080();
    let cpu_t = i7.inference_time_s(&w, false);
    let gpu_t = gtx.inference_gpu_b(&w).total_s();
    assert!(gpu_t < cpu_t, "GPU_b should beat serial CPU");
    assert!(gtx.inference_gpu_a(&w).memcpy_fraction() > gtx.inference_gpu_b(&w).memcpy_fraction());
}

#[test]
fn every_suite_env_supports_one_soc_generation() {
    for kind in [EnvKind::CartPole, EnvKind::LunarLander, EnvKind::Asterix] {
        let (inputs, outputs) = kind.interface();
        let neat = NeatConfig::builder(inputs, outputs)
            .pop_size(6)
            .build()
            .unwrap();
        let mut soc = GenesysSoc::new(SocConfig::default().with_num_eve_pes(4), neat, 2);
        let mut factory = move |i: usize| -> Box<dyn Environment> {
            let mut seed_env = kind.make(i as u64);
            // bound Atari episodes so the test stays fast
            if kind.is_atari() {
                seed_env = match kind {
                    EnvKind::Asterix => {
                        Box::new(genesys::gym::AsterixRam::from_seed(i as u64).with_max_steps(80))
                    }
                    _ => seed_env,
                };
            }
            seed_env
        };
        let report = soc.run_generation(&mut factory);
        assert!(report.inference.env_steps > 0, "{}", kind.label());
        assert!(report.evolution.cycles > 0, "{}", kind.label());
    }
}

#[test]
fn checkpoint_restore_resumes_evolution() {
    use genesys::soc::{decode_population, encode_population};
    let config = NeatConfig::builder(4, 1).pop_size(24).build().unwrap();
    let mut pop = Population::new(config.clone(), 13);
    for _ in 0..5 {
        pop.evolve_once(cartpole_fitness());
    }
    // Checkpoint through the genome-buffer image format.
    let image = encode_population(pop.genomes());
    let restored = decode_population(4, 1, &image).unwrap();
    assert_eq!(restored.len(), 24);
    let mut resumed = Population::from_genomes(config, restored, 14);
    let stats = resumed.evolve_once(cartpole_fitness());
    assert_eq!(stats.generation, 0);
    assert_eq!(resumed.genomes().len(), 24);
    // Structural knowledge survived the checkpoint: resumed genomes keep
    // whatever hidden structure evolution had built.
    let genes_before: usize = pop.genomes().iter().map(Genome::num_genes).sum();
    assert!(genes_before > 0);
    for g in resumed.genomes() {
        assert!(g.validate().is_ok());
    }
}

#[test]
fn quantized_and_float_evolution_both_learn() {
    // Ablation: the SoC's fixed-point gene encoding does not break
    // learnability on CartPole (DESIGN.md §5 quantization ablation).
    let config = NeatConfig::builder(4, 1).pop_size(48).build().unwrap();

    let mut float_pop = Population::new(config.clone(), 77);
    let mut best_float = f64::MIN;
    for _ in 0..10 {
        best_float = best_float.max(float_pop.evolve_once(cartpole_fitness()).max_fitness);
    }

    let mut soc = GenesysSoc::new(SocConfig::default().with_num_eve_pes(32), config, 77);
    let mut factory = |i: usize| -> Box<dyn Environment> { Box::new(CartPole::new(i as u64)) };
    let mut best_quant = f64::MIN;
    for _ in 0..10 {
        best_quant = best_quant.max(soc.run_generation(&mut factory).max_fitness);
    }
    assert!(
        best_float > 20.0,
        "float baseline learned nothing: {best_float}"
    );
    assert!(
        best_quant > 20.0,
        "quantized loop learned nothing: {best_quant}"
    );
}
