//! Ablation: does the 64-bit fixed-point gene encoding (Q5.6 attributes,
//! Q6.9 weights) hurt evolution quality? Software float NEAT vs the
//! hardware loop (which round-trips every attribute through the codec)
//! on CartPole, across seeds.
//!
//! Both loops run through the session API — one driver, two backends —
//! with episode seeds derived from `(seed, generation, index)`, so each
//! column is reproducible and worker-count-invariant.
//!
//! Usage: `ablation_quantization [--runs N] [--generations N] [--pop N] [--seed N]`

use genesys_bench::{print_table, ExperimentArgs};
use genesys_core::{GenesysSoc, SocConfig};
use genesys_gym::{EnvKind, EpisodeEvaluator};
use genesys_neat::{NeatConfig, Session};

fn main() {
    let args = ExperimentArgs::parse();
    let runs = args.runs_or(3);
    let generations = args.generations_or(12);
    let pop = args.pop_or(48);
    let seed0 = args.base_seed(0);

    let mut rows = Vec::new();
    let mut float_total = 0.0;
    let mut quant_total = 0.0;
    for run in 0..runs as u64 {
        let seed = seed0 + run;
        let config = NeatConfig::builder(4, 1).pop_size(pop).build().unwrap();

        // Float software evolution.
        let mut sw = Session::builder(config.clone(), seed)
            .expect("valid config")
            .workload(EpisodeEvaluator::new(EnvKind::CartPole))
            .build();
        let best_float = sw
            .run(generations)
            .history
            .iter()
            .map(|s| s.max_fitness)
            .fold(f64::MIN, f64::max);

        // Quantized hardware evolution (same config, same seeds, same
        // driver loop — only the backend differs).
        let soc = GenesysSoc::new(SocConfig::default().with_num_eve_pes(64), config, seed);
        let mut hw = Session::on(soc, seed)
            .workload(EpisodeEvaluator::new(EnvKind::CartPole))
            .build();
        let best_quant = hw
            .run(generations)
            .history
            .iter()
            .map(|s| s.max_fitness)
            .fold(f64::MIN, f64::max);

        float_total += best_float;
        quant_total += best_quant;
        rows.push(vec![
            format!("{seed}"),
            format!("{best_float:.1}"),
            format!("{best_quant:.1}"),
        ]);
    }
    rows.push(vec![
        "mean".to_string(),
        format!("{:.1}", float_total / runs as f64),
        format!("{:.1}", quant_total / runs as f64),
    ]);
    print_table(
        "Quantization ablation: best CartPole fitness after N generations",
        &[
            "Seed",
            "float (software NEAT)",
            "Q5.6/Q6.9 (EvE hardware loop)",
        ],
        &rows,
    );
    println!("\nExpectation: the fixed-point loop tracks the float loop — NEAT's");
    println!("search is perturbation-driven and robust to ~0.002 weight grids.");
}
