//! # genesys-neat — NEAT neuro-evolution
//!
//! A from-scratch implementation of **NEAT** (Neuro-Evolution of Augmenting
//! Topologies, Stanley & Miikkulainen 2002), structured the way the GeneSys
//! paper (MICRO 2018) instruments it:
//!
//! * [`gene`] — the two gene kinds of Fig 3(c): node genes (neurons) and
//!   connection genes (synapses), addressed by stable keys so that parent
//!   gene streams can be *aligned* (the job of the hardware Gene Split block).
//! * [`genome`] — a collection of genes describing one network, with the
//!   crossover and the three mutation operators of Fig 3(d).
//! * [`arena`] — flat population arenas: every genome's sorted gene
//!   clusters packed contiguously with per-genome offset/length tables,
//!   the layout population-scale sweeps (speciation distance rows, gene
//!   statistics) stream at megapopulation sizes.
//! * [`network`] — the feed-forward phenotype: evaluation of the acyclic
//!   graph in topological wavefronts (the same wavefronts ADAM packs into
//!   matrix–vector products).
//! * [`species`] — speciation and fitness sharing (Section II-D).
//! * [`reproduction`] — the staged plan/execute/assign reproduction
//!   pipeline (serial planning, executor-parallel child construction,
//!   serial innovation assignment) and the **reproduction trace** the
//!   paper uses to drive its hardware evaluation (Section VI-A).
//! * [`population`] — the outer evolutionary loop with optional
//!   population-level parallelism (PLP) over evaluation, speciation and
//!   reproduction.
//! * [`island`] — asynchronous island evolution: the population split
//!   into self-contained islands, each scheduled as one whole-generation
//!   job on the shared executor (no cross-island phase barrier), with
//!   deterministic ring migration on an epoch schedule.
//! * [`executor`] — the persistent work-stealing worker pool that backs
//!   PLP: threads are spawned once and reused across generations, and
//!   index-keyed jobs (genome evaluations, distance-matrix rows, child
//!   builds) are balanced through work-stealing deques instead of static
//!   chunks.
//! * [`session`] — **the run surface**: one [`Session`] drives any
//!   workload ([`Evaluator`]) on any backend ([`Backend`]: this crate's
//!   [`Population`] or `genesys_core`'s SoC model), with streaming
//!   observers, stop conditions, and bit-identical checkpoint/resume
//!   through [`EvolutionState`].
//!
//! # Quickstart
//!
//! ```
//! use genesys_neat::{EvalContext, NeatConfig, Network, Session};
//!
//! // XOR as a fitness function: 2 inputs, 1 output.
//! let config = NeatConfig::builder(2, 1).pop_size(64).build()?;
//! let cases = [([0.0, 0.0], 0.0), ([0.0, 1.0], 1.0), ([1.0, 0.0], 1.0), ([1.0, 1.0], 0.0)];
//! let mut session = Session::builder(config, 1234)?
//!     .workload(move |_ctx: EvalContext, net: &Network| {
//!         let mut err = 0.0;
//!         for (input, want) in &cases {
//!             let out = net.activate(input)[0];
//!             err += (out - want) * (out - want);
//!         }
//!         4.0 - err
//!     })
//!     .build();
//! let report = session.run(3);
//! assert_eq!(session.generation(), 3);
//! assert_eq!(report.history.len(), 3);
//! # Ok::<(), genesys_neat::SessionError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod activation;
pub mod aggregation;
pub mod arena;
pub mod config;
pub mod error;
pub mod executor;
pub mod gene;
pub mod genome;
pub mod hyperneat;
pub mod innovation;
pub mod island;
pub mod layers;
pub mod network;
pub mod population;
pub mod reproduction;
pub mod rng;
pub mod session;
pub mod species;
pub mod stats;
pub mod trace;
pub mod tuning;

pub use activation::Activation;
pub use aggregation::Aggregation;
pub use arena::{GenomeView, PopulationArena, RepColumns, REP_BLOCK};
pub use config::{InitialWeights, NeatConfig, NeatConfigBuilder};
pub use error::{ConfigError, GenomeError};
pub use executor::{Executor, WorkerLocal};
pub use gene::{ConnGene, ConnKey, NodeGene, NodeId, NodeType};
pub use genome::{Genome, GenomeSignature};
pub use hyperneat::{HyperNeat, Substrate};
pub use innovation::{InnovationSource, InnovationTracker, SplitRecorder};
pub use island::{island_seed, Archipelago, ArchipelagoState, EvolutionBackend};
pub use layers::{LayerConfig, LayerGene, LayerGenome};
pub use network::{BatchScratch, Network, NetworkPlan, Scratch};
pub use population::{Population, RunOutcome, RunResult};
pub use reproduction::{ChildKind, ChildPlan, ReproductionReport};
pub use rng::XorWow;
pub use session::{
    Backend, BestSummary, EvalContext, Evaluation, Evaluator, EvolutionState, GenerationEvent,
    OwnedGenerationEvent, RunState, Session, SessionBuilder, SessionError, SessionReport,
};
pub use species::{SpeciateScanStats, Species, SpeciesId, SpeciesSet};
pub use stats::{GenerationStats, PopulationDiagnostics};
pub use trace::{GenerationTrace, OpKind, ReproductionOp};
pub use tuning::{tune_weights, TuningConfig, TuningResult};
