//! NoC design-space sweep: trace replay under point-to-point vs multicast
//! interconnects at several PE counts (the Fig 11(b)/(c) kernel).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genesys_core::{replay_trace, GenomeBuffer, NocKind, SramConfig};
use genesys_neat::{GenerationTrace, Genome, NeatConfig, Network, Population};

fn traced_population() -> (GenerationTrace, Vec<usize>, Vec<usize>) {
    let config = NeatConfig::builder(8, 1).pop_size(150).build().unwrap();
    let mut pop = Population::new(config, 9);
    let parent_sizes: Vec<usize> = pop.genomes().iter().map(Genome::num_genes).collect();
    pop.evolve_once(|net: &Network| net.activate(&[0.2; 8])[0]);
    let child_sizes: Vec<usize> = pop.genomes().iter().map(Genome::num_genes).collect();
    (pop.last_trace().unwrap().clone(), parent_sizes, child_sizes)
}

fn bench_replay(c: &mut Criterion) {
    let (trace, parents, children) = traced_population();
    let mut group = c.benchmark_group("eve_trace_replay");
    for &pes in &[16usize, 64, 256] {
        for noc in [NocKind::PointToPoint, NocKind::MulticastTree] {
            group.bench_with_input(BenchmarkId::new(format!("{noc}"), pes), &pes, |b, &n| {
                b.iter(|| {
                    let mut buffer = GenomeBuffer::new(SramConfig::default());
                    replay_trace(&trace, &parents, &children, n, noc, &mut buffer)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
