//! Persistent work-stealing evaluation engine (population-level parallelism).
//!
//! The paper's PLP configuration (Table III, CPU_b/CPU_d) fans genome
//! evaluation out over OS threads. The original implementation spawned
//! fresh scoped threads every generation and split the population into
//! `div_ceil(n, threads)` static chunks — so (a) thousands of generations
//! paid thread startup thousands of times, and (b) one deep genome or slow
//! gym episode at the end of a chunk serialized the whole generation (and
//! when `n % threads` was small the last thread received no work at all).
//!
//! An [`Executor`] fixes both: a pool of worker threads is spawned **once**
//! and reused across generations, and each evaluation batch is distributed
//! through a shared [`crossbeam::deque::Injector`] plus per-worker
//! work-stealing deques, so idle workers steal queued genomes from busy
//! ones instead of waiting at a chunk boundary.
//!
//! # Determinism contract
//!
//! Parallel evaluation is **bit-identical** to serial evaluation provided
//! the job closure is a pure function of the *job index* (and any state it
//! captures immutably):
//!
//! 1. Every index in `0..n` is executed **exactly once** per batch — the
//!    deques deliver each queued index to a single thread.
//! 2. Results are gathered **by index**, never by completion order; slot
//!    `i` of the output always holds the result of job `i`.
//! 3. Which thread runs a job, and in what order, is *not* deterministic.
//!    Any randomness must therefore derive from the job index (e.g.
//!    `genesys_gym::episode_seed(base, generation, index)`), never from a
//!    worker id, a shared `fetch_add` counter, or thread-local RNG state.
//!    Per-worker streams would make fitness depend on the race winner.
//! 4. The batch submitter participates in the processing loop (caller-runs
//!    semantics), so an `Executor` with `workers == 1` still makes progress
//!    even before its worker wakes, and small batches finish without a
//!    full pool wake-up.
//!
//! A panic inside a job is caught on the worker, remaining queued jobs are
//! drained unexecuted, and the payload is re-raised on the submitting
//! thread once the batch has quiesced — the pool itself survives and can
//! run further batches.

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A batch of `n` jobs, type-erased. The `'static` lifetime is a lie told
/// to the worker threads; see the safety argument in [`Executor::run`].
/// (`Send` holds automatically: `&T` is `Send` when `T: Sync`, and the
/// task is `Sync` by bound.)
#[derive(Clone, Copy)]
struct BatchDesc {
    task: &'static (dyn Fn(usize) + Sync),
    epoch: u64,
}

thread_local! {
    /// Identities (by `Shared` address) of the pools whose jobs this
    /// thread is currently executing. A re-entrant [`Executor::run`] on a
    /// pool already on this stack is a guaranteed deadlock (the submit
    /// lock is held, or the calling worker can never finish the outer
    /// batch), so it is turned into a panic with a clear message instead.
    static ACTIVE_POOLS: std::cell::RefCell<Vec<usize>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// RAII marker for "this thread is processing a batch of pool `.0`".
struct PoolEntryGuard(usize);

impl PoolEntryGuard {
    fn enter(pool_id: usize) -> PoolEntryGuard {
        ACTIVE_POOLS.with(|stack| stack.borrow_mut().push(pool_id));
        PoolEntryGuard(pool_id)
    }

    fn is_active(pool_id: usize) -> bool {
        ACTIVE_POOLS.with(|stack| stack.borrow().contains(&pool_id))
    }
}

impl Drop for PoolEntryGuard {
    fn drop(&mut self) {
        ACTIVE_POOLS.with(|stack| {
            let mut stack = stack.borrow_mut();
            let pos = stack
                .iter()
                .rposition(|&p| p == self.0)
                .expect("entry guard was pushed");
            stack.remove(pos);
        });
    }
}

struct PoolState {
    batch: Option<BatchDesc>,
    /// Monotonic batch counter; lets sleeping workers distinguish a new
    /// batch from the one they already finished.
    epoch: u64,
    /// Threads currently inside the processing loop of the live batch.
    active: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Signals workers that a new batch (or shutdown) is available.
    job_cv: Condvar,
    /// Signals the submitter that the live batch may have quiesced.
    done_cv: Condvar,
    /// Global queue the submitter seeds with job indices.
    injector: Injector<usize>,
    /// Thief handles onto every worker's local deque.
    stealers: Vec<Stealer<usize>>,
    /// Jobs of the live batch that have been taken off a queue (executed
    /// or drained after a panic).
    completed: AtomicUsize,
    /// Set when a job panicked: remaining jobs are drained, not executed.
    abort: AtomicBool,
    /// First panic payload of the live batch.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Shared {
    /// Takes one job index: local deque first, then the injector (batched),
    /// then stealing from sibling workers. `local` may be `None` for the
    /// submitting thread, which steals single jobs instead of batches.
    fn find_job(&self, local: Option<&Worker<usize>>) -> Option<usize> {
        if let Some(local) = local {
            if let Some(i) = local.pop() {
                return Some(i);
            }
            loop {
                match self.injector.steal_batch_and_pop(local) {
                    Steal::Success(i) => return Some(i),
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
        } else if let Some(i) = self.injector.steal().success() {
            return Some(i);
        }
        for stealer in &self.stealers {
            loop {
                match stealer.steal() {
                    Steal::Success(i) => return Some(i),
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
        }
        None
    }

    /// Runs jobs of the live batch until no queued work remains. Shared by
    /// the worker threads and the submitting thread. The caller must have
    /// registered itself in `state.active` while holding the state lock.
    fn process(&self, batch: BatchDesc, n: usize, local: Option<&Worker<usize>>) {
        while let Some(index) = self.find_job(local) {
            if !self.abort.load(Ordering::Acquire) {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (batch.task)(index))) {
                    self.abort.store(true, Ordering::Release);
                    let mut slot = self
                        .panic
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    slot.get_or_insert(payload);
                }
            }
            // Count drained-after-abort jobs too: completion means "no job
            // left on any queue", which is what the submitter waits for.
            if self.completed.fetch_add(1, Ordering::AcqRel) + 1 == n {
                let _guard = self
                    .state
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                self.done_cv.notify_all();
            }
        }
    }

    fn worker_loop(&self, local: Worker<usize>) {
        let mut last_epoch = 0u64;
        loop {
            let batch = {
                let mut state = self
                    .state
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                loop {
                    if state.shutdown {
                        return;
                    }
                    match state.batch {
                        Some(batch) if batch.epoch != last_epoch => {
                            state.active += 1;
                            break batch;
                        }
                        _ => {
                            state = self
                                .job_cv
                                .wait(state)
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                        }
                    }
                }
            };
            last_epoch = batch.epoch;
            let _entry = PoolEntryGuard::enter(self as *const Shared as usize);
            // Workers pass `usize::MAX` as the batch size so the
            // `completed == n` fast-path notification never fires here;
            // their authoritative completion signal is `active` reaching 0
            // when they leave the processing loop below.
            self.process(batch, usize::MAX, Some(&local));
            let mut state = self
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state.active -= 1;
            if state.active == 0 {
                self.done_cv.notify_all();
            }
        }
    }
}

/// A persistent pool of evaluation workers with work-stealing scheduling.
///
/// Create one per process (or per experiment binary) and share it across
/// populations and generations via `Arc`; see the module docs for the
/// determinism contract. Dropping the executor shuts the workers down and
/// joins them.
pub struct Executor {
    shared: Arc<Shared>,
    /// Serializes batches: one live batch at a time even when the pool is
    /// shared between populations on different threads.
    submit: Mutex<()>,
    workers: usize,
    /// Threads spawned by this pool over its whole lifetime (monotonic).
    /// Equals `workers` forever: construction is the only spawn site, which
    /// is what tests assert to prove reuse across generations.
    threads_spawned: AtomicU64,
    handles: Vec<JoinHandle<()>>,
}

impl fmt::Debug for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Executor")
            .field("workers", &self.workers)
            .finish()
    }
}

impl Executor {
    /// Spawns a pool of `workers` threads (clamped to at least 1). The
    /// threads live until the executor is dropped; no further threads are
    /// ever spawned, no matter how many batches run.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let locals: Vec<Worker<usize>> = (0..workers).map(|_| Worker::new_lifo()).collect();
        let stealers: Vec<Stealer<usize>> = locals.iter().map(Worker::stealer).collect();
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                batch: None,
                epoch: 0,
                active: 0,
                shutdown: false,
            }),
            job_cv: Condvar::new(),
            done_cv: Condvar::new(),
            injector: Injector::new(),
            stealers,
            completed: AtomicUsize::new(0),
            abort: AtomicBool::new(false),
            panic: Mutex::new(None),
        });
        let threads_spawned = AtomicU64::new(0);
        let handles = locals
            .into_iter()
            .enumerate()
            .map(|(id, local)| {
                let shared = Arc::clone(&shared);
                threads_spawned.fetch_add(1, Ordering::SeqCst);
                std::thread::Builder::new()
                    .name(format!("genesys-eval-{id}"))
                    .spawn(move || shared.worker_loop(local))
                    .expect("failed to spawn evaluation worker")
            })
            .collect();
        Executor {
            shared,
            submit: Mutex::new(()),
            workers,
            threads_spawned,
            handles,
        }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Threads this pool has spawned over its whole lifetime (monotonic).
    /// Stays equal to [`Executor::workers`] no matter how many batches
    /// run — the observable proof that evaluation never spawns threads in
    /// the hot path. Per-instance, so assertions on it are immune to other
    /// pools being created concurrently (e.g. by parallel tests).
    pub fn threads_spawned(&self) -> u64 {
        self.threads_spawned.load(Ordering::SeqCst)
    }

    /// Runs `task(i)` for every `i in 0..n`, returning once all jobs have
    /// finished. Jobs are pulled from a shared work-stealing deque, so the
    /// assignment of jobs to threads is load-balanced, not chunked.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic raised by any job (remaining jobs are
    /// skipped). The pool survives and can run further batches.
    ///
    /// Also panics on **re-entrant use**: calling `run` on a pool from
    /// inside one of that same pool's jobs (directly, or by evaluating a
    /// nested `Population` bound to the shared pool) would deadlock — the
    /// submit lock is held for the outer batch, and a worker that blocks
    /// submitting can never finish it. Nested evaluation must be serial or
    /// use a separate pool. Distinct pools may be nested freely.
    pub fn run<F>(&self, n: usize, task: F)
    where
        F: Fn(usize) + Sync,
    {
        if n == 0 {
            return;
        }
        let pool_id = Arc::as_ptr(&self.shared) as usize;
        assert!(
            !PoolEntryGuard::is_active(pool_id),
            "re-entrant Executor::run from inside one of this pool's own jobs \
             would deadlock; evaluate nested work serially or on a separate pool"
        );
        let _entry = PoolEntryGuard::enter(pool_id);
        let _batch_guard = self
            .submit
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // SAFETY (lifetime erasure): workers only dereference `task`
        // between registering in `state.active` (under the state lock,
        // while the batch is live) and deregistering. Before returning,
        // this function (a) waits until every job has been taken off the
        // queues (`completed == n`) and every participant has left the
        // processing loop (`active == 0`), and (b) clears `state.batch`,
        // so no thread can observe the reference afterwards. The borrow
        // therefore outlives every dereference, and the `'static` cast is
        // never acted upon.
        let task_ref: &(dyn Fn(usize) + Sync) = &task;
        let task_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task_ref) };

        self.shared.completed.store(0, Ordering::SeqCst);
        self.shared.abort.store(false, Ordering::SeqCst);
        for i in 0..n {
            self.shared.injector.push(i);
        }
        let batch = {
            let mut state = self
                .shared
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state.epoch += 1;
            let batch = BatchDesc {
                task: task_static,
                epoch: state.epoch,
            };
            state.batch = Some(batch);
            // The submitter participates too (caller-runs).
            state.active += 1;
            self.shared.job_cv.notify_all();
            batch
        };
        self.shared.process(batch, n, None);
        let mut state = self
            .shared
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.active -= 1;
        while !(self.shared.completed.load(Ordering::Acquire) >= n && state.active == 0) {
            state = self
                .shared
                .done_cv
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        state.batch = None;
        drop(state);
        let payload = self
            .shared
            .panic
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }

    /// Maps `f` over `0..n`, collecting results **by index** — slot `i`
    /// always holds `f(i)` regardless of which worker computed it.
    pub fn map<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let mut out: Vec<Option<R>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let slots = SliceSlots::new(&mut out);
        self.run(n, |i| {
            // SAFETY: each index is delivered to exactly one job (executor
            // contract #1), so writes to distinct slots never alias.
            unsafe { *slots.get(i) = Some(f(i)) };
        });
        out.into_iter()
            .map(|r| r.expect("executor ran every index"))
            .collect()
    }

    /// Runs `f(i, &mut items[i])` for every index in parallel, collecting
    /// the per-index results by index. Each job owns exactly one disjoint
    /// slot of `items`, so index-keyed jobs can build results **in place**
    /// (e.g. the reproduction pipeline writing each child genome into its
    /// preallocated arena slot) without per-job allocation.
    pub fn map_mut<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        let n = items.len();
        let mut out: Vec<Option<R>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let slots = SliceSlots::new(&mut out);
        let item_slots = SliceSlots::new(items);
        self.run(n, |i| {
            // SAFETY: each index is delivered to exactly one job (executor
            // contract #1), so the item and result slots of distinct jobs
            // never alias.
            unsafe { *slots.get(i) = Some(f(i, &mut *item_slots.get(i))) };
        });
        out.into_iter()
            .map(|r| r.expect("executor ran every index"))
            .collect()
    }

    /// Runs `f(i, chunk_i)` over the disjoint fixed-size chunks of
    /// `items`, in parallel, where chunk `i` is
    /// `items[i * chunk_len..(i + 1) * chunk_len]`. This is the primitive
    /// behind the speciation distance matrix: row `i` (one genome against
    /// every representative) is one index-keyed job.
    ///
    /// # Panics
    ///
    /// Panics if `items.len()` is not a multiple of `chunk_len`.
    pub fn for_each_chunk<T, F>(&self, items: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        if items.is_empty() {
            return;
        }
        assert!(
            chunk_len > 0 && items.len().is_multiple_of(chunk_len),
            "items must split into whole chunks"
        );
        let n = items.len() / chunk_len;
        let chunks = ChunkSlots::new(items, chunk_len);
        self.run(n, |i| {
            // SAFETY: chunks at distinct indices are disjoint, and each
            // index is delivered to exactly one job.
            f(i, unsafe { chunks.get(i) });
        });
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        {
            let mut state = self
                .shared
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state.shutdown = true;
            self.shared.job_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Per-thread reusable scratch state for executor jobs.
///
/// Evaluation jobs need mutable workspace (e.g. a
/// [`crate::network::Scratch`] plus gym rollout buffers) that is expensive
/// to reallocate per job but must not be shared between threads. A
/// `WorkerLocal` is a checkout pool: [`WorkerLocal::with`] hands the
/// calling thread an instance for the duration of one job — reusing a
/// previously returned one when available, creating a fresh one (via the
/// factory) only when all instances are currently checked out. The live
/// instance count is therefore bounded by the number of threads ever
/// concurrently inside `with`, no matter how many jobs run.
///
/// Determinism: scratch contents never carry information between jobs
/// (each job fully overwrites what it reads), so which instance a job
/// receives cannot affect results — consistent with the executor's
/// determinism contract.
pub struct WorkerLocal<S> {
    free: Mutex<Vec<S>>,
    make: Box<dyn Fn() -> S + Send + Sync>,
    created: AtomicUsize,
}

impl<S> fmt::Debug for WorkerLocal<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerLocal")
            .field("created", &self.created.load(Ordering::Relaxed))
            .finish()
    }
}

impl<S> WorkerLocal<S> {
    /// Creates an empty pool; `make` builds one instance per concurrent
    /// thread, lazily.
    pub fn new(make: impl Fn() -> S + Send + Sync + 'static) -> WorkerLocal<S> {
        WorkerLocal {
            free: Mutex::new(Vec::new()),
            make: Box::new(make),
            created: AtomicUsize::new(0),
        }
    }

    /// Runs `f` with a checked-out instance; the instance is returned to
    /// the pool afterwards for reuse by the next job on any thread. If `f`
    /// panics the instance is dropped, not returned.
    pub fn with<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        let mut state = {
            let mut free = self
                .free
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            free.pop()
        }
        .unwrap_or_else(|| {
            self.created.fetch_add(1, Ordering::Relaxed);
            (self.make)()
        });
        let result = f(&mut state);
        self.free
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(state);
        result
    }

    /// Instances created so far — bounded by the peak number of threads
    /// concurrently inside [`WorkerLocal::with`], which is what tests
    /// assert to prove buffer reuse across jobs and generations.
    pub fn instances(&self) -> usize {
        self.created.load(Ordering::Relaxed)
    }
}

/// Shared mutable access to disjoint slots of a slice. The executor's
/// exactly-once index delivery guarantees writes never alias.
struct SliceSlots<T> {
    ptr: *mut T,
}

unsafe impl<T: Send> Sync for SliceSlots<T> {}
unsafe impl<T: Send> Send for SliceSlots<T> {}

impl<T> SliceSlots<T> {
    fn new(slice: &mut [T]) -> Self {
        SliceSlots {
            ptr: slice.as_mut_ptr(),
        }
    }

    /// # Safety
    ///
    /// The caller must ensure `i` is in bounds and that no two threads
    /// access the same slot concurrently.
    #[allow(clippy::mut_from_ref)]
    unsafe fn get(&self, i: usize) -> &mut T {
        &mut *self.ptr.add(i)
    }
}

/// Shared mutable access to disjoint fixed-size chunks of a slice; the
/// chunked sibling of [`SliceSlots`].
struct ChunkSlots<T> {
    ptr: *mut T,
    chunk_len: usize,
}

unsafe impl<T: Send> Sync for ChunkSlots<T> {}
unsafe impl<T: Send> Send for ChunkSlots<T> {}

impl<T> ChunkSlots<T> {
    fn new(slice: &mut [T], chunk_len: usize) -> Self {
        ChunkSlots {
            ptr: slice.as_mut_ptr(),
            chunk_len,
        }
    }

    /// # Safety
    ///
    /// The caller must ensure chunk `i` is in bounds and that no two
    /// threads access the same chunk concurrently.
    #[allow(clippy::mut_from_ref)]
    unsafe fn get(&self, i: usize) -> &mut [T] {
        std::slice::from_raw_parts_mut(self.ptr.add(i * self.chunk_len), self.chunk_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_every_index_exactly_once() {
        let pool = Executor::new(4);
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        pool.run(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn map_gathers_by_index() {
        let pool = Executor::new(3);
        let out = pool.map(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn map_mut_updates_slots_and_gathers_by_index() {
        let pool = Executor::new(4);
        let mut items: Vec<u64> = (0..100).collect();
        let out = pool.map_mut(&mut items, |i, item| {
            *item *= 2;
            i as u64 + *item
        });
        assert_eq!(items, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(out, (0..100).map(|i| 3 * i).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_chunk_covers_disjoint_rows() {
        let pool = Executor::new(3);
        let mut matrix = vec![0u32; 7 * 5];
        pool.for_each_chunk(&mut matrix, 5, |row, chunk| {
            for (col, cell) in chunk.iter_mut().enumerate() {
                *cell = (row * 5 + col) as u32;
            }
        });
        assert_eq!(matrix, (0..35).collect::<Vec<_>>());
        // Empty input is a no-op regardless of chunk length.
        pool.for_each_chunk(&mut [] as &mut [u32], 5, |_, _| panic!("no chunks"));
    }

    #[test]
    #[should_panic(expected = "whole chunks")]
    fn for_each_chunk_rejects_ragged_input() {
        let pool = Executor::new(2);
        pool.for_each_chunk(&mut [1u8, 2, 3], 2, |_, _| {});
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let pool = Executor::new(2);
        pool.run(0, |_| panic!("must not run"));
        assert!(pool.map(0, |i| i).is_empty());
    }

    #[test]
    fn single_worker_pool_completes() {
        let pool = Executor::new(1);
        let out = pool.map(32, |i| i + 1);
        assert_eq!(out[31], 32);
    }

    #[test]
    fn pool_is_reused_across_batches() {
        let pool = Executor::new(4);
        assert_eq!(pool.threads_spawned(), 4);
        for round in 0..5 {
            let out = pool.map(64, move |i| i + round);
            assert_eq!(out[0], round);
        }
        assert_eq!(pool.threads_spawned(), 4, "batches must not spawn threads");
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        let pool = Executor::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(64, |i| {
                if i == 13 {
                    panic!("unlucky genome");
                }
            });
        }));
        assert!(result.is_err(), "job panic must reach the submitter");
        // The pool must still work afterwards.
        let out = pool.map(16, |i| i * 2);
        assert_eq!(out[8], 16);
    }

    #[test]
    fn imbalanced_jobs_all_complete() {
        let pool = Executor::new(4);
        let out = pool.map(40, |i| {
            // Simulate stragglers: later indices do quadratically more work.
            let mut acc = 0u64;
            for k in 0..(i as u64 * i as u64 * 50) {
                acc = acc.wrapping_add(std::hint::black_box(k));
            }
            (i, acc)
        });
        let indices: HashSet<usize> = out.iter().map(|(i, _)| *i).collect();
        assert_eq!(indices.len(), 40);
    }

    #[test]
    fn more_workers_than_jobs() {
        let pool = Executor::new(8);
        let out = pool.map(3, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn worker_local_reuses_instances_across_batches() {
        let pool = Executor::new(4);
        let scratch: WorkerLocal<Vec<u64>> = WorkerLocal::new(Vec::new);
        for _round in 0..5 {
            pool.run(64, |i| {
                scratch.with(|buf| {
                    buf.clear();
                    buf.extend(0..(i as u64 % 7));
                });
            });
        }
        // 1 submitter + 4 workers can be concurrently active at most.
        assert!(
            scratch.instances() <= 5,
            "instances bounded by participants, got {}",
            scratch.instances()
        );
        assert!(scratch.instances() >= 1);
    }

    #[test]
    fn worker_local_serial_use_creates_one_instance() {
        let scratch: WorkerLocal<Vec<u8>> = WorkerLocal::new(Vec::new);
        for _ in 0..100 {
            scratch.with(|buf| buf.push(1));
        }
        assert_eq!(scratch.instances(), 1);
        // The single instance accumulated all pushes: proof of reuse.
        scratch.with(|buf| assert_eq!(buf.len(), 100));
    }

    #[test]
    fn reentrant_run_panics_instead_of_deadlocking() {
        let pool = Executor::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, |_| pool.run(1, |_| {}));
        }));
        assert!(result.is_err(), "nested run on the same pool must panic");
        // Distinct pools may nest, and the outer pool still works.
        let inner = Executor::new(2);
        let out = pool.map(4, |i| inner.map(2, move |j| i * 10 + j)[1]);
        assert_eq!(out, vec![1, 11, 21, 31]);
        assert_eq!(pool.map(3, |i| i + 1), vec![1, 2, 3]);
    }
}
