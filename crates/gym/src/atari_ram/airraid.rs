//! AirRaid: a fixed-shooter RAM machine.
//!
//! The player slides along the bottom of a 16-column playfield defending
//! two buildings from waves of descending bombers. Six actions mirror the
//! Atari button set: noop, fire, right, left, right+fire, left+fire.

use super::{RamGame, RAM_SIZE};
use genesys_neat::XorWow;

const WIDTH: u8 = 16;
const HEIGHT: u8 = 12;
const MAX_ENEMIES: usize = 8;
const MAX_BULLETS: usize = 4;
const ENEMY_SCORE: f64 = 25.0;

#[derive(Debug, Clone, Copy, Default)]
struct Enemy {
    x: u8,
    y: u8,
    alive: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct Bullet {
    x: u8,
    y: u8,
    live: bool,
}

/// The AirRaid game state.
#[derive(Debug, Clone)]
pub struct AirRaid {
    rng: XorWow,
    player_x: u8,
    lives: u8,
    score: f64,
    tick: u32,
    wave: u8,
    enemies: [Enemy; MAX_ENEMIES],
    bullets: [Bullet; MAX_BULLETS],
    building_hp: [u8; 2],
}

impl AirRaid {
    /// Creates a game seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        let mut game = AirRaid {
            rng: XorWow::seed_from_u64_value(seed ^ 0xA12A_1D00),
            player_x: WIDTH / 2,
            lives: 3,
            score: 0.0,
            tick: 0,
            wave: 0,
            enemies: [Enemy::default(); MAX_ENEMIES],
            bullets: [Bullet::default(); MAX_BULLETS],
            building_hp: [4, 4],
        };
        game.spawn_wave();
        game
    }

    fn spawn_wave(&mut self) {
        self.wave = self.wave.wrapping_add(1);
        let count = (4 + (self.wave as usize % 4)).min(MAX_ENEMIES);
        for (i, e) in self.enemies.iter_mut().enumerate() {
            if i < count {
                *e = Enemy {
                    x: self.rng.below(WIDTH as usize) as u8,
                    y: (self.rng.below(3)) as u8,
                    alive: true,
                };
            } else {
                e.alive = false;
            }
        }
    }

    fn fire(&mut self) {
        if let Some(b) = self.bullets.iter_mut().find(|b| !b.live) {
            *b = Bullet {
                x: self.player_x,
                y: HEIGHT - 1,
                live: true,
            };
        }
    }
}

impl RamGame for AirRaid {
    fn name(&self) -> &'static str {
        "AirRaid_ram_v0"
    }

    fn n_actions(&self) -> usize {
        6
    }

    fn restart(&mut self) {
        self.player_x = WIDTH / 2;
        self.lives = 3;
        self.score = 0.0;
        self.tick = 0;
        self.wave = 0;
        self.bullets = [Bullet::default(); MAX_BULLETS];
        self.building_hp = [4, 4];
        self.spawn_wave();
    }

    fn tick(&mut self, action: usize) -> f64 {
        if self.game_over() {
            return 0.0;
        }
        let before = self.score;
        // 0 noop, 1 fire, 2 right, 3 left, 4 right+fire, 5 left+fire
        match action {
            2 | 4 => self.player_x = (self.player_x + 1).min(WIDTH - 1),
            3 | 5 => self.player_x = self.player_x.saturating_sub(1),
            _ => {}
        }
        if matches!(action, 1 | 4 | 5) && self.tick.is_multiple_of(3) {
            self.fire();
        }
        // Bullets climb two rows per frame.
        for b in &mut self.bullets {
            if b.live {
                if b.y >= 2 {
                    b.y -= 2;
                } else {
                    b.live = false;
                }
            }
        }
        // Enemies descend every 4th frame with a lateral drift.
        let descend = self.tick.is_multiple_of(4);
        for i in 0..MAX_ENEMIES {
            if !self.enemies[i].alive {
                continue;
            }
            if descend {
                self.enemies[i].y += 1;
                let drift = self.rng.below(3);
                self.enemies[i].x = match drift {
                    0 => self.enemies[i].x.saturating_sub(1),
                    2 => (self.enemies[i].x + 1).min(WIDTH - 1),
                    _ => self.enemies[i].x,
                };
            }
            // Bullet collision.
            for b in &mut self.bullets {
                if b.live && b.x == self.enemies[i].x && b.y <= self.enemies[i].y + 1 {
                    b.live = false;
                    self.enemies[i].alive = false;
                    self.score += ENEMY_SCORE;
                }
            }
            // Reached the ground: damages a building (or the player).
            if self.enemies[i].alive && self.enemies[i].y >= HEIGHT - 1 {
                self.enemies[i].alive = false;
                let which = usize::from(self.enemies[i].x >= WIDTH / 2);
                if self.building_hp[which] > 0 {
                    self.building_hp[which] -= 1;
                } else {
                    self.lives = self.lives.saturating_sub(1);
                }
            }
        }
        if self.enemies.iter().all(|e| !e.alive) {
            self.score += 50.0; // wave-clear bonus
            self.spawn_wave();
        }
        self.tick += 1;
        self.score - before
    }

    fn game_over(&self) -> bool {
        self.lives == 0
    }

    fn write_ram(&self, ram: &mut [u8; RAM_SIZE]) {
        ram.fill(0);
        ram[0] = self.player_x;
        ram[1] = self.lives;
        let score = (self.score as u32).min(u32::from(u16::MAX));
        ram[2] = (score & 0xFF) as u8;
        ram[3] = (score >> 8) as u8;
        ram[4] = (self.tick & 0xFF) as u8;
        ram[5] = self.wave;
        ram[6] = self.building_hp[0];
        ram[7] = self.building_hp[1];
        for (i, e) in self.enemies.iter().enumerate() {
            ram[8 + i] = e.x;
            ram[16 + i] = e.y;
            ram[24 + i] = u8::from(e.alive);
        }
        for (i, b) in self.bullets.iter().enumerate() {
            ram[32 + i] = b.x;
            ram[36 + i] = b.y;
            ram[40 + i] = u8::from(b.live);
        }
    }

    fn score(&self) -> f64 {
        self.score
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn firing_under_enemies_scores() {
        let mut game = AirRaid::new(7);
        let mut total = 0.0;
        for _ in 0..600 {
            // Track the first live enemy and shoot.
            let target = game.enemies.iter().find(|e| e.alive).map(|e| e.x);
            let action = match target {
                Some(x) if x > game.player_x => 4,
                Some(x) if x < game.player_x => 5,
                _ => 1,
            };
            total += game.tick(action);
            if game.game_over() {
                break;
            }
        }
        assert!(total > 0.0, "aimed fire should score, got {total}");
    }

    #[test]
    fn idle_play_eventually_loses() {
        let mut game = AirRaid::new(8);
        for _ in 0..5000 {
            game.tick(0);
            if game.game_over() {
                break;
            }
        }
        assert!(
            game.game_over(),
            "undefended buildings fall and lives drain"
        );
    }

    #[test]
    fn restart_resets_state() {
        let mut game = AirRaid::new(9);
        for _ in 0..100 {
            game.tick(1);
        }
        game.restart();
        assert_eq!(game.lives, 3);
        assert_eq!(game.score(), 0.0);
        assert_eq!(game.tick, 0);
    }

    #[test]
    fn ram_reflects_player_motion() {
        let mut game = AirRaid::new(10);
        let mut ram = [0u8; RAM_SIZE];
        game.write_ram(&mut ram);
        let x0 = ram[0];
        game.tick(2); // move right
        game.write_ram(&mut ram);
        assert_eq!(ram[0], x0 + 1);
    }

    #[test]
    fn player_stays_in_bounds() {
        let mut game = AirRaid::new(11);
        for _ in 0..50 {
            game.tick(3);
        }
        assert_eq!(game.player_x, 0);
        for _ in 0..50 {
            game.tick(2);
        }
        assert_eq!(game.player_x, WIDTH - 1);
    }
}
