//! Speciation and fitness sharing (Section II-D of the paper).
//!
//! "Speciation works by grouping a few individuals within the population
//! with a particular niche. Within a species, the fitness of the younger
//! individuals is artificially increased so that they are not obliterated
//! when pitted against older, fitter individuals." Genomes are clustered by
//! compatibility distance against a per-species representative; fitness
//! sharing normalizes member fitness within each species before offspring
//! are allocated.
//!
//! # Parallel clustering
//!
//! The expensive part of speciation is the genome × representative
//! compatibility-distance matrix — `O(population × species)` gene-stream
//! merges. [`SpeciesSet::speciate_on`] computes that matrix as index-keyed
//! jobs on the persistent [`Executor`] (one row per genome), then performs
//! the actual cluster **assignment as a deterministic serial fold** over
//! the precomputed rows. Distances are pure functions of
//! `(genome, representative)`, so the matrix — and therefore the final
//! clustering — is bit-identical at any worker count, including the serial
//! path ([`SpeciesSet::speciate`]).
//!
//! # Representative cap
//!
//! At megapopulation scale the species count itself can grow without
//! bound, so every genome is compared against at most
//! [`NeatConfig::species_representative_cap`] representatives (the first
//! `K` species in creation order), bounding the fold at `O(n·K)`. Once the
//! cap is reached no new species are founded; an unmatched genome joins
//! the *nearest* capped candidate instead (ties break toward the earliest
//! species via [`f64::total_cmp`]). Runs whose species count stays below
//! the cap are bit-identical to the uncapped algorithm; see the config
//! field's docs for the determinism trade.

use crate::arena::{GenomeView, PopulationArena};
use crate::config::NeatConfig;
use crate::executor::Executor;
use crate::genome::Genome;
use std::fmt;

/// Identifier of a species.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpeciesId(pub u32);

impl fmt::Display for SpeciesId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One species: a niche of structurally similar genomes.
#[derive(Debug, Clone, PartialEq)]
pub struct Species {
    /// Identifier (stable across generations).
    pub id: SpeciesId,
    /// Representative genome used for distance tests.
    pub representative: Genome,
    /// Member indices into the current generation's genome vector.
    pub members: Vec<usize>,
    /// Generation at which the species appeared.
    pub created_at: usize,
    /// Last generation in which the species' best fitness improved.
    pub last_improved: usize,
    /// Best raw fitness ever seen in this species.
    pub best_fitness: f64,
    /// Fitness-shared (adjusted) fitness for the current generation.
    pub adjusted_fitness: f64,
}

impl Species {
    /// Mean raw fitness of current members.
    pub fn mean_fitness(&self, genomes: &[Genome]) -> f64 {
        if self.members.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .members
            .iter()
            .map(|&i| genomes[i].fitness().unwrap_or(0.0))
            .sum();
        sum / self.members.len() as f64
    }

    /// Best member index (by raw fitness) in the current generation.
    /// NaN fitness sorts above every finite value under [`f64::total_cmp`],
    /// so a poisoned evaluation degrades deterministically instead of
    /// aborting.
    pub fn champion(&self, genomes: &[Genome]) -> Option<usize> {
        self.members.iter().copied().max_by(|&a, &b| {
            let fa = genomes[a].fitness().unwrap_or(f64::NEG_INFINITY);
            let fb = genomes[b].fitness().unwrap_or(f64::NEG_INFINITY);
            fa.total_cmp(&fb)
        })
    }
}

/// The set of all living species, with the clustering and stagnation logic.
#[derive(Debug, Clone, Default)]
pub struct SpeciesSet {
    species: Vec<Species>,
    next_id: u32,
    /// Distance-matrix buffer reused across generations (row per genome,
    /// column per candidate species that existed when `speciate` began).
    dist_scratch: Vec<f64>,
    /// Flat arena the candidate representatives are packed into each
    /// generation, so distance rows walk contiguous gene memory instead of
    /// one heap allocation per species (buffers reused across calls).
    rep_arena: PopulationArena,
}

impl SpeciesSet {
    /// Creates an empty species set.
    pub fn new() -> Self {
        SpeciesSet::default()
    }

    /// Reassembles a species set from checkpointed parts: the living
    /// species (creation order) and the id counter. The inverse of
    /// cloning out [`SpeciesSet::iter`] plus [`SpeciesSet::next_species_id`].
    pub fn from_parts(species: Vec<Species>, next_id: u32) -> Self {
        SpeciesSet {
            species,
            next_id,
            dist_scratch: Vec::new(),
            rep_arena: PopulationArena::new(),
        }
    }

    /// The id the next founded species will receive — part of the
    /// checkpoint state (ids must not be reused after a resume).
    pub fn next_species_id(&self) -> u32 {
        self.next_id
    }

    /// Living species, in creation order.
    pub fn iter(&self) -> impl Iterator<Item = &Species> {
        self.species.iter()
    }

    /// Number of living species.
    pub fn len(&self) -> usize {
        self.species.len()
    }

    /// True when no species exist (before the first [`SpeciesSet::speciate`]).
    pub fn is_empty(&self) -> bool {
        self.species.is_empty()
    }

    /// Clusters `genomes` into species by compatibility distance, serially.
    /// Equivalent to [`SpeciesSet::speciate_on`] with no pool.
    pub fn speciate(&mut self, genomes: &[Genome], config: &NeatConfig, generation: usize) {
        self.speciate_on(genomes, config, generation, None);
    }

    /// Clusters `genomes` into species by compatibility distance, with the
    /// distance matrix computed on `pool` when given (see the module docs
    /// for the determinism argument).
    ///
    /// Each genome joins the first existing species whose representative is
    /// within [`NeatConfig::compatibility_threshold`]; otherwise it founds a
    /// new species. Afterwards each non-empty species re-elects the member
    /// closest to the old representative as its new representative
    /// (`neat-python` behaviour); empty species are dropped.
    pub fn speciate_on(
        &mut self,
        genomes: &[Genome],
        config: &NeatConfig,
        generation: usize,
        pool: Option<&Executor>,
    ) {
        for s in &mut self.species {
            s.members.clear();
        }
        let existing = self.species.len();
        let cap = config.species_representative_cap.max(1);
        // Only the first `cap` species (creation order) are assignment
        // candidates; the matrix never needs more columns than that.
        let candidates = existing.min(cap);

        // Phase 1 (parallel): the genome × representative distance matrix,
        // one index-keyed job per genome row. Distances to species founded
        // *during* the fold below cannot be precomputed; they are filled in
        // serially on demand (new species are rare after the first
        // generations). Without a pool the matrix is skipped entirely —
        // the serial fold keeps the lazy first-match early exit, which
        // does far fewer distance computations than a full matrix; the
        // clustering is identical either way because distances are pure.
        // Pack the candidate representatives into the flat arena so every
        // distance row below streams one contiguous gene buffer.
        self.rep_arena.pack(
            self.species
                .iter()
                .take(candidates)
                .map(|s| &s.representative),
        );

        let use_matrix = candidates > 0 && pool.is_some();
        self.dist_scratch.clear();
        if use_matrix {
            self.dist_scratch.resize(genomes.len() * candidates, 0.0);
            let rep_arena = &self.rep_arena;
            let pool = pool.expect("use_matrix implies a pool");
            pool.for_each_chunk(&mut self.dist_scratch, candidates, |g, row| {
                let gv = GenomeView::of(&genomes[g]);
                for (s, slot) in row.iter_mut().enumerate() {
                    *slot = gv.distance(rep_arena.view(s), config);
                }
            });
        }

        // Phase 2 (serial fold): deterministic assignment in genome order —
        // first candidate species (in creation order) under the threshold
        // wins, exactly as the lazy serial scan this replaced. At most
        // `cap` candidates are ever scanned; past the cap an unmatched
        // genome joins the nearest candidate instead of founding.
        for (idx, genome) in genomes.iter().enumerate() {
            let mut placed = false;
            let mut nearest: Option<(usize, f64)> = None;
            let scan = self.species.len().min(cap);
            for s in 0..scan {
                let d = if s < candidates {
                    if use_matrix {
                        self.dist_scratch[idx * candidates + s]
                    } else {
                        // Serial path still streams the packed arena.
                        GenomeView::of(genome).distance(self.rep_arena.view(s), config)
                    }
                } else {
                    genome.distance(&self.species[s].representative, config)
                };
                if d < config.compatibility_threshold {
                    self.species[s].members.push(idx);
                    placed = true;
                    break;
                }
                // Strict `<` keeps the earliest species on ties; total_cmp
                // keeps NaN distances from poisoning the argmin.
                if nearest.is_none_or(|(_, best)| d.total_cmp(&best).is_lt()) {
                    nearest = Some((s, d));
                }
            }
            if placed {
                continue;
            }
            if self.species.len() < cap {
                let id = SpeciesId(self.next_id);
                self.next_id += 1;
                self.species.push(Species {
                    id,
                    representative: genome.clone(),
                    members: vec![idx],
                    created_at: generation,
                    last_improved: generation,
                    best_fitness: f64::NEG_INFINITY,
                    adjusted_fitness: 0.0,
                });
            } else {
                let (s, _) = nearest.expect("cap >= 1 so at least one candidate was scanned");
                self.species[s].members.push(idx);
            }
        }

        // Phase 3: re-elect representatives (matrix rows double as the
        // member→old-representative distances for pre-existing species).
        // Ties and NaN break deterministically via total_cmp.
        for (s, sp) in self.species.iter_mut().enumerate() {
            if sp.members.is_empty() {
                continue; // dropped below
            }
            let closest = sp
                .members
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let dist = |g: usize| {
                        if s < candidates && use_matrix {
                            self.dist_scratch[g * candidates + s]
                        } else {
                            genomes[g].distance(&sp.representative, config)
                        }
                    };
                    dist(a).total_cmp(&dist(b))
                })
                .expect("non-empty species");
            // clone_from reuses the old representative's gene buffers.
            sp.representative.clone_from(&genomes[closest]);
        }
        self.species.retain(|s| !s.members.is_empty());
    }

    /// Applies fitness sharing: every species' `adjusted_fitness` becomes
    /// its members' mean fitness normalized by the population's fitness
    /// range — so young, small species stay competitive.
    ///
    /// Returns `(min, max)` raw population fitness.
    pub fn share_fitness(&mut self, genomes: &[Genome]) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for g in genomes {
            let f = g.fitness().unwrap_or(0.0);
            lo = lo.min(f);
            hi = hi.max(f);
        }
        let range = (hi - lo).max(1e-9);
        for s in &mut self.species {
            let mean = s.mean_fitness(genomes);
            s.adjusted_fitness = (mean - lo) / range;
        }
        (lo, hi)
    }

    /// Updates stagnation bookkeeping and removes species that have not
    /// improved for [`NeatConfig::max_stagnation`] generations, always
    /// keeping the best [`NeatConfig::species_elitism`] species alive.
    ///
    /// Returns the ids of removed species.
    pub fn remove_stagnant(
        &mut self,
        genomes: &[Genome],
        config: &NeatConfig,
        generation: usize,
    ) -> Vec<SpeciesId> {
        for s in &mut self.species {
            let best_now = s
                .members
                .iter()
                .map(|&i| genomes[i].fitness().unwrap_or(f64::NEG_INFINITY))
                .fold(f64::NEG_INFINITY, f64::max);
            if best_now > s.best_fitness {
                s.best_fitness = best_now;
                s.last_improved = generation;
            }
        }
        // Rank species by best fitness; protect the top `species_elitism`.
        let mut ranked: Vec<(f64, SpeciesId)> = self
            .species
            .iter()
            .map(|s| (s.best_fitness, s.id))
            .collect();
        ranked.sort_by(|a, b| b.0.total_cmp(&a.0));
        let protected: Vec<SpeciesId> = ranked
            .iter()
            .take(config.species_elitism)
            .map(|&(_, id)| id)
            .collect();
        let mut removed = Vec::new();
        self.species.retain(|s| {
            let stagnant = generation.saturating_sub(s.last_improved) > config.max_stagnation;
            if stagnant && !protected.contains(&s.id) {
                removed.push(s.id);
                false
            } else {
                true
            }
        });
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::innovation::InnovationTracker;
    use crate::rng::XorWow;
    use crate::trace::OpCounters;

    fn cfg() -> NeatConfig {
        NeatConfig::builder(3, 1).build().unwrap()
    }

    fn diverged_population(n: usize) -> (Vec<Genome>, NeatConfig) {
        let c = cfg();
        let mut r = XorWow::seed_from_u64_value(77);
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut genomes = Vec::new();
        for k in 0..n {
            let mut g = Genome::initial(k as u64, &c, &mut r);
            // Diverge half the population structurally.
            if k % 2 == 1 {
                let mut ops = OpCounters::new();
                for _ in 0..6 {
                    g.mutate_add_node(&mut innov, &mut r, &mut ops);
                    g.mutate_attributes(&c, &mut r, &mut ops);
                }
            }
            g.set_fitness(k as f64);
            genomes.push(g);
        }
        (genomes, c)
    }

    #[test]
    fn identical_genomes_form_one_species() {
        let c = cfg();
        let mut r = XorWow::seed_from_u64_value(1);
        let genomes: Vec<Genome> = (0..10)
            .map(|k| {
                let mut g = Genome::initial(k, &c, &mut r);
                g.set_fitness(1.0);
                g
            })
            .collect();
        let mut set = SpeciesSet::new();
        set.speciate(&genomes, &c, 0);
        assert_eq!(set.len(), 1);
        assert_eq!(set.iter().next().unwrap().members.len(), 10);
    }

    #[test]
    fn diverged_genomes_split_into_species() {
        let (genomes, c) = diverged_population(10);
        let mut set = SpeciesSet::new();
        set.speciate(&genomes, &c, 0);
        assert!(set.len() >= 2, "structural divergence should split species");
        let total: usize = set.iter().map(|s| s.members.len()).sum();
        assert_eq!(total, 10, "every genome belongs to exactly one species");
    }

    #[test]
    fn fitness_sharing_normalizes_to_unit_range() {
        let (genomes, c) = diverged_population(10);
        let mut set = SpeciesSet::new();
        set.speciate(&genomes, &c, 0);
        let (lo, hi) = set.share_fitness(&genomes);
        assert_eq!(lo, 0.0);
        assert_eq!(hi, 9.0);
        for s in set.iter() {
            assert!((0.0..=1.0).contains(&s.adjusted_fitness));
        }
    }

    #[test]
    fn stagnant_species_removed_but_elite_protected() {
        let (mut genomes, mut c) = diverged_population(10);
        c.max_stagnation = 3;
        c.species_elitism = 1;
        let mut set = SpeciesSet::new();
        set.speciate(&genomes, &c, 0);
        let initial = set.len();
        assert!(initial >= 2);
        // Freeze fitness; advance generations until stagnation triggers.
        for g in &mut genomes {
            g.set_fitness(1.0);
        }
        let mut removed_total = 0;
        for generation in 0..10 {
            removed_total += set.remove_stagnant(&genomes, &c, generation).len();
        }
        assert!(removed_total >= 1, "stagnant species should be removed");
        assert!(!set.is_empty(), "species elitism keeps at least one alive");
    }

    #[test]
    fn parallel_speciation_matches_serial_exactly() {
        let (genomes, c) = diverged_population(24);
        let mut serial = SpeciesSet::new();
        serial.speciate(&genomes, &c, 0);
        for workers in [1usize, 4, 8] {
            let pool = Executor::new(workers);
            let mut parallel = SpeciesSet::new();
            parallel.speciate_on(&genomes, &c, 0, Some(&pool));
            assert_eq!(serial.len(), parallel.len(), "workers={workers}");
            for (a, b) in serial.iter().zip(parallel.iter()) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.members, b.members);
                assert_eq!(a.representative, b.representative);
            }
        }
    }

    #[test]
    fn respeciation_reuses_the_distance_matrix_path() {
        // Second call exercises `existing > 0` (matrix rows) on both paths.
        let (genomes, c) = diverged_population(16);
        let pool = Executor::new(4);
        let mut serial = SpeciesSet::new();
        let mut parallel = SpeciesSet::new();
        for generation in 0..3 {
            serial.speciate(&genomes, &c, generation);
            parallel.speciate_on(&genomes, &c, generation, Some(&pool));
        }
        let a: Vec<_> = serial.iter().map(|s| (s.id, s.members.clone())).collect();
        let b: Vec<_> = parallel.iter().map(|s| (s.id, s.members.clone())).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn representative_cap_bounds_species_and_covers_population() {
        let (genomes, mut c) = diverged_population(24);
        c.compatibility_threshold = 0.10; // force many would-be species
        c.species_representative_cap = 3;
        let mut set = SpeciesSet::new();
        set.speciate(&genomes, &c, 0);
        assert!(set.len() <= 3, "cap must bound the species count");
        let total: usize = set.iter().map(|s| s.members.len()).sum();
        assert_eq!(total, 24, "overflow genomes join the nearest candidate");
    }

    #[test]
    fn capped_speciation_is_bit_identical_below_the_cap() {
        // The default cap (64) is far above the species this population
        // forms, so capped and effectively-uncapped runs must agree.
        let (genomes, c) = diverged_population(16);
        let mut huge = c.clone();
        huge.species_representative_cap = usize::MAX;
        let mut capped = SpeciesSet::new();
        let mut uncapped = SpeciesSet::new();
        for generation in 0..3 {
            capped.speciate(&genomes, &c, generation);
            uncapped.speciate(&genomes, &huge, generation);
        }
        assert!(capped.len() < c.species_representative_cap);
        let a: Vec<_> = capped.iter().map(|s| (s.id, s.members.clone())).collect();
        let b: Vec<_> = uncapped.iter().map(|s| (s.id, s.members.clone())).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn capped_parallel_speciation_matches_capped_serial() {
        let (genomes, mut c) = diverged_population(24);
        c.compatibility_threshold = 0.10;
        c.species_representative_cap = 2;
        let mut serial = SpeciesSet::new();
        serial.speciate(&genomes, &c, 0);
        serial.speciate(&genomes, &c, 1); // matrix path has columns now
        for workers in [1usize, 4, 8] {
            let pool = Executor::new(workers);
            let mut parallel = SpeciesSet::new();
            parallel.speciate_on(&genomes, &c, 0, Some(&pool));
            parallel.speciate_on(&genomes, &c, 1, Some(&pool));
            assert_eq!(serial.len(), parallel.len(), "workers={workers}");
            for (a, b) in serial.iter().zip(parallel.iter()) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.members, b.members);
                assert_eq!(a.representative, b.representative);
            }
        }
    }

    #[test]
    fn nan_fitness_degrades_deterministically() {
        let (mut genomes, c) = diverged_population(8);
        genomes[3].set_fitness(f64::NAN);
        let mut set = SpeciesSet::new();
        set.speciate(&genomes, &c, 0);
        // total_cmp ordering: no panic, and the champion is well defined
        // (NaN sorts above every finite fitness).
        for s in set.iter() {
            let champ = s.champion(&genomes).expect("non-empty species");
            if s.members.contains(&3) {
                assert_eq!(champ, 3, "NaN sorts greatest under total_cmp");
            }
        }
        // Stagnation ranking must not panic either.
        set.remove_stagnant(&genomes, &c, 1);
    }

    #[test]
    fn champion_is_best_member() {
        let (genomes, c) = diverged_population(10);
        let mut set = SpeciesSet::new();
        set.speciate(&genomes, &c, 0);
        for s in set.iter() {
            let champ = s.champion(&genomes).unwrap();
            for &m in &s.members {
                assert!(genomes[champ].fitness() >= genomes[m].fitness());
            }
        }
    }
}
