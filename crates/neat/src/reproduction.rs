//! Reproduction: selection, elitism, offspring allocation, crossover and
//! mutation — the work the GeneSys Gene Selector + EvE perform each
//! generation (walkthrough steps 7–10).
//!
//! # The staged pipeline
//!
//! The paper's central observation is that evolution is embarrassingly
//! parallel: every child can be produced by an independent PE once the
//! selector has decided the parent list. The software path mirrors that
//! structure as a **plan / execute / assign** split:
//!
//! 1. **Plan** ([`plan_offspring`], serial): offspring slots are allocated
//!    per species (elites, crossover pairs, clone-mutate parents, top-up
//!    clones of the global best) and every slot receives a genome key and
//!    a private PRNG seed. This is the software analogue of the CPU-side
//!    Gene Selector forwarding the child list to Gene Split.
//! 2. **Execute** ([`reproduce_into`], parallel): each planned child is
//!    built into its preallocated arena slot as an index-keyed job on the
//!    persistent [`Executor`] — one job per child, exactly like one EvE PE
//!    per child genome. Structural add-node mutations do **not** touch the
//!    global innovation table; they are recorded as *split requests*
//!    against per-child provisional ids
//!    (a [`crate::innovation::SplitRecorder`]).
//! 3. **Assign** (serial): the recorded split requests are resolved through
//!    the global [`InnovationTracker`] in canonical child order and the
//!    provisional ids are remapped, so "same split, same generation, same
//!    node id" holds for the whole population regardless of which worker
//!    built which child.
//!
//! # Determinism contract
//!
//! Reproduction is **bit-identical at any worker count** (including the
//! serial path) because:
//!
//! * All shared-state decisions — offspring allocation, member ranking,
//!   parent draws, keys — happen in the serial plan phase, consuming the
//!   population RNG in a fixed order.
//! * Each child's crossover/mutation randomness comes from a private
//!   [`XorWow`] stream seeded by [`child_seed`]`(base_seed, generation,
//!   child_index)` — a pure function of the child's position, never of
//!   scheduling order, a worker id, or shared counters.
//! * Innovation numbers are assigned by the serial pass in child order
//!   (step 3 above), so the [`InnovationTracker`] observes the identical
//!   request sequence every run.
//!
//! Note the per-child seed derivation *replaces* the single interleaved
//! RNG stream of the pre-pipeline implementation (the same trade the
//! evaluation engine made when per-genome episode seeds replaced the
//! shared seed counter): trajectories differ from that implementation, but
//! are reproducible and worker-count-invariant under the new contract.
//! Ranking ties and NaN fitness break deterministically via
//! [`f64::total_cmp`].
//!
//! The megapopulation refactor made the same trade a third time, inside
//! each child's own stream: `Genome::mutate_attributes` now draws one
//! geometric skip per *hit* instead of one coin flip per *gene* (see
//! `geometric_hits` in [`crate::genome`]). The marginal per-gene mutation
//! probability is unchanged and every per-hit payload draw is the one the
//! coin-flip path made, but the PRNG stream *shape* differs, so child
//! genomes differ bit-for-bit from pre-refactor builds. As before:
//! trajectories are reproducible, worker-count-invariant, and
//! checkpoint/resume-exact under the current contract — the trade buys
//! O(mutations) attribute sweeps instead of O(genes), which is what makes
//! `--pop 10_000..100_000` practical. Speciation's representative cap
//! (`NeatConfig::species_representative_cap`) is the companion trade on
//! the clustering side; see [`crate::species`].
//!
//! The session server (`genesys_serve`) adds **no** new trade: tenants
//! multiplex one executor but each owns a private population RNG keyed by
//! its own `(base_seed, generation, index)` tuples, so cross-tenant
//! scheduling order, eviction/rehydration (a snapshot round-trip), and
//! the resident-cap churn are all invisible to every trajectory — a
//! server-mediated session is byte-identical to a direct [`crate::Session`]
//! run of the same seed at any worker count. The one *semantic* (not
//! determinism) difference: the server's `step(n)` verb runs exactly `n`
//! generations, while `Session::run(n)` may stop early on
//! `target_fitness` — convergence gating is the client's call, made from
//! the observed event stream.
//!
//! The island backend ([`crate::island`]) makes the seed-derivation trade
//! a fourth time, at **epoch granularity**: an [`crate::Archipelago`]
//! splits the run seed into per-island streams via
//! [`crate::island_seed`]`(seed, island)`, and every downstream seed — a
//! genome's evaluation episode, a child's reproduction stream — derives
//! from the island-local `(island_seed, generation, index)` triple
//! instead of the global one. Trajectories therefore differ from a
//! monolithic run of the same seed at `islands > 1` (different islands,
//! different streams), but remain reproducible, worker-count-invariant
//! and checkpoint/resume-exact; migration is RNG-free (fitness-ranked
//! emigrants on a schedule that is a pure function of the generation
//! index), and island 0 keeps the run seed unchanged, so `islands = 1`
//! collapses the trade entirely — bit-identical to the monolithic
//! backend. The buy: islands schedule as whole-generation jobs with no
//! cross-island phase barrier, the multi-worker win quantified by the
//! `islands` bench.

use crate::config::NeatConfig;
use crate::executor::Executor;
use crate::gene::NodeId;
use crate::genome::Genome;
use crate::innovation::{InnovationTracker, SplitRecorder};
use crate::rng::XorWow;
use crate::species::{SpeciesId, SpeciesSet};
use crate::trace::{ChildTrace, GenerationTrace, OpCounters};

/// Result of one reproduction step.
#[derive(Debug)]
pub struct ReproductionReport {
    /// The next generation's genomes.
    pub offspring: Vec<Genome>,
    /// The reproduction trace (consumed by the hardware model and Fig 5(a)).
    pub trace: GenerationTrace,
}

/// How a planned child is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChildKind {
    /// Verbatim copy of `parent1` (skips the EvE PEs entirely).
    Elite,
    /// Crossover of `parent1` (the fitter) and `parent2`, then mutation.
    Crossover,
    /// Clone of `parent1`, then mutation.
    CloneMutate,
    /// Rounding/extinction top-up: clone of the global best, then
    /// mutation.
    TopUp,
}

/// One offspring slot produced by the serial planning pass — everything an
/// executor job (or a hardware PE) needs to build the child independently.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChildPlan {
    /// Index of the child within the new generation.
    pub child_index: usize,
    /// Index of the first parent (the fitter one for crossover).
    pub parent1: usize,
    /// Index of the second parent (equals `parent1` for asexual kinds).
    pub parent2: usize,
    /// How the child is produced.
    pub kind: ChildKind,
    /// Genome key assigned to the child.
    pub key: u64,
    /// Seed of the child's private PRNG stream (see [`child_seed`]).
    pub seed: u64,
    /// Species the parents were drawn from — the next speciation pass's
    /// *hint* (`None` for [`ChildKind::TopUp`] slots, whose parent is the
    /// global best regardless of species). A hint is advisory: speciation
    /// verifies it with an exact distance check and produces bit-identical
    /// assignments whether the hint is right, wrong, stale, or absent.
    pub parent_species: Option<SpeciesId>,
}

/// Derives the seed of one child's private PRNG stream from
/// `(base_seed, generation, child_index)` — a SplitMix64-style mix, the
/// reproduction-phase sibling of `genesys_gym::episode_seed`. Pure in its
/// inputs, so child construction is independent of scheduling order.
pub fn child_seed(base_seed: u64, generation: u64, child_index: u64) -> u64 {
    let mut z = base_seed
        .wrapping_add(generation.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(child_index.wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Allocates offspring counts to species proportionally to their
/// fitness-shared adjusted fitness, with a floor of
/// `min_species_size.max(elitism)` per species, normalized to `pop_size`.
pub fn allocate_offspring(adjusted: &[f64], pop_size: usize, min_size: usize) -> Vec<usize> {
    if adjusted.is_empty() {
        return Vec::new();
    }
    let total: f64 = adjusted.iter().sum();
    let mut alloc: Vec<usize> = if total <= 0.0 {
        // Degenerate: share equally.
        vec![(pop_size / adjusted.len()).max(min_size); adjusted.len()]
    } else {
        adjusted
            .iter()
            .map(|af| ((af / total) * pop_size as f64).round() as usize)
            .map(|n| n.max(min_size))
            .collect()
    };
    // Normalize the rounded total back to exactly pop_size: trim from the
    // largest allocations, pad the smallest.
    loop {
        let sum: usize = alloc.iter().sum();
        if sum == pop_size {
            break;
        }
        if sum > pop_size {
            let i = alloc
                .iter()
                .enumerate()
                .max_by_key(|&(_, &n)| n)
                .map(|(i, _)| i)
                .expect("non-empty");
            if alloc[i] > min_size {
                alloc[i] -= 1;
            } else {
                // Every species is at the floor; steal anyway to respect
                // pop_size exactly.
                alloc[i] = alloc[i].saturating_sub(1);
            }
        } else {
            let i = alloc
                .iter()
                .enumerate()
                .min_by_key(|&(_, &n)| n)
                .map(|(i, _)| i)
                .expect("non-empty");
            alloc[i] += 1;
        }
    }
    alloc
}

/// The serial planning pass: allocates every offspring slot of the next
/// generation from an evaluated, speciated population.
///
/// Within each species, members are ranked by raw fitness; the top
/// [`NeatConfig::elitism`] genomes become [`ChildKind::Elite`] slots, and
/// the top [`NeatConfig::survival_threshold`] fraction form the parent pool
/// ("only individuals above a certain fitness threshold are allowed to
/// participate in reproduction"). Remaining slots draw two parents from the
/// pool and become [`ChildKind::Crossover`] (probability
/// [`NeatConfig::crossover_prob`], distinct parents) or
/// [`ChildKind::CloneMutate`]. If rounding or extinction leaves the plan
/// short, [`ChildKind::TopUp`] slots clone the global best. Keys are
/// assigned sequentially from `next_key` and per-child seeds via
/// [`child_seed`] from `base_seed`.
///
/// This is also the planning step of `genesys-core`'s hardware selector:
/// the returned slots map 1:1 onto its PE mating plans.
pub fn plan_offspring(
    genomes: &[Genome],
    species: &SpeciesSet,
    config: &NeatConfig,
    rng: &mut XorWow,
    generation: usize,
    next_key: &mut u64,
    base_seed: u64,
) -> Vec<ChildPlan> {
    let adjusted: Vec<f64> = species.iter().map(|s| s.adjusted_fitness).collect();
    let floor = config.min_species_size.max(config.elitism);
    let alloc = allocate_offspring(&adjusted, config.pop_size, floor);

    let mut plans: Vec<ChildPlan> = Vec::with_capacity(config.pop_size);
    let push = |plans: &mut Vec<ChildPlan>,
                next_key: &mut u64,
                parent1: usize,
                parent2: usize,
                kind: ChildKind,
                parent_species: Option<SpeciesId>| {
        let child_index = plans.len();
        plans.push(ChildPlan {
            child_index,
            parent1,
            parent2,
            kind,
            key: *next_key,
            seed: child_seed(base_seed, generation as u64, child_index as u64),
            parent_species,
        });
        *next_key += 1;
    };

    for (s, &spawn) in species.iter().zip(alloc.iter()) {
        if spawn == 0 {
            continue;
        }
        // Rank members by raw fitness, best first (NaN-tolerant).
        let mut ranked: Vec<usize> = s.members.clone();
        ranked.sort_by(|&a, &b| {
            let fa = genomes[a].fitness().unwrap_or(f64::NEG_INFINITY);
            let fb = genomes[b].fitness().unwrap_or(f64::NEG_INFINITY);
            fb.total_cmp(&fa)
        });

        // Elites pass through unchanged.
        let elites = config.elitism.min(spawn);
        for &elite_idx in ranked.iter().take(elites) {
            push(
                &mut plans,
                next_key,
                elite_idx,
                elite_idx,
                ChildKind::Elite,
                Some(s.id),
            );
        }

        // Parent pool: the surviving top fraction, at least two if possible.
        let pool_size = ((ranked.len() as f64 * config.survival_threshold).ceil() as usize)
            .clamp(1, ranked.len());
        let pool = &ranked[..pool_size.max(2.min(ranked.len()))];

        for _ in elites..spawn {
            let p1 = pool[rng.below(pool.len())];
            let p2 = pool[rng.below(pool.len())];
            let sexual = p1 != p2 && rng.chance(config.crossover_prob);
            if sexual {
                // Order parents by fitness: parent1 must be the fitter one.
                let (hi, lo) = if genomes[p1].fitness() >= genomes[p2].fitness() {
                    (p1, p2)
                } else {
                    (p2, p1)
                };
                push(
                    &mut plans,
                    next_key,
                    hi,
                    lo,
                    ChildKind::Crossover,
                    Some(s.id),
                );
            } else {
                push(
                    &mut plans,
                    next_key,
                    p1,
                    p1,
                    ChildKind::CloneMutate,
                    Some(s.id),
                );
            }
        }
    }

    // Guard against rounding leaving us short (e.g. all species died):
    // top-up by mutating clones of the global best.
    if plans.len() < config.pop_size {
        let best = genomes
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                a.fitness()
                    .unwrap_or(f64::NEG_INFINITY)
                    .total_cmp(&b.fitness().unwrap_or(f64::NEG_INFINITY))
            })
            .map(|(i, _)| i)
            .unwrap_or(0);
        while plans.len() < config.pop_size {
            push(&mut plans, next_key, best, best, ChildKind::TopUp, None);
        }
    }
    plans.truncate(config.pop_size);
    plans
}

/// Per-child result of the parallel execute phase.
struct ChildOutcome {
    /// `(split key, provisional id)` requests, allocation order.
    requests: Vec<(crate::gene::ConnKey, NodeId)>,
    /// Operation tallies for the trace.
    ops: OpCounters,
    /// Parent gene pairs streamed through the PE for this child.
    genes_streamed: u64,
}

/// Produces the next generation from an evaluated, speciated population,
/// writing the children into `offspring` (an arena of recycled genome
/// shells: existing entries are overwritten in place, reusing their gene
/// buffers; the vector is resized to exactly `pop_size`).
///
/// When `pool` is given, children are built in parallel as index-keyed
/// executor jobs; results are bit-identical to the serial path (see the
/// module-level determinism contract). Returns the generation trace.
///
/// When `hints` is given, it is overwritten with each child's
/// [`ChildPlan::parent_species`] (one entry per offspring slot, in child
/// order) — the speciation hints for the *next* generation's
/// [`SpeciesSet::speciate_with_hints`]. Hints are purely advisory and do
/// not affect any evolved bit (see [`crate::species`]).
#[allow(clippy::too_many_arguments)]
pub fn reproduce_into(
    genomes: &[Genome],
    species: &SpeciesSet,
    config: &NeatConfig,
    innovations: &mut InnovationTracker,
    rng: &mut XorWow,
    generation: usize,
    next_key: &mut u64,
    base_seed: u64,
    pool: Option<&Executor>,
    offspring: &mut Vec<Genome>,
    hints: Option<&mut Vec<Option<SpeciesId>>>,
) -> GenerationTrace {
    innovations.begin_generation();

    // ---- Phase 1: serial planning --------------------------------------
    let plan = plan_offspring(
        genomes, species, config, rng, generation, next_key, base_seed,
    );
    if let Some(hints) = hints {
        hints.clear();
        hints.extend(plan.iter().map(|p| p.parent_species));
    }

    // ---- Phase 2: parallel execute into the arena ----------------------
    offspring.truncate(plan.len());
    offspring.resize_with(plan.len(), Genome::shell);
    let build = |i: usize, slot: &mut Genome| -> ChildOutcome {
        let p = &plan[i];
        let mut ops = OpCounters::new();
        match p.kind {
            ChildKind::Elite => {
                slot.clone_from(&genomes[p.parent1]);
                slot.set_key(p.key);
                ChildOutcome {
                    requests: Vec::new(),
                    ops,
                    genes_streamed: genomes[p.parent1].num_genes() as u64,
                }
            }
            ChildKind::Crossover => {
                let mut crng = XorWow::seed_from_u64_value(p.seed);
                let mut recorder = SplitRecorder::new();
                Genome::crossover_into(
                    slot,
                    p.key,
                    &genomes[p.parent1],
                    &genomes[p.parent2],
                    0.5,
                    &mut crng,
                    &mut ops,
                );
                slot.mutate(config, &mut recorder, &mut crng, &mut ops);
                ChildOutcome {
                    requests: recorder.into_requests(),
                    ops,
                    genes_streamed: genomes[p.parent1]
                        .num_genes()
                        .max(genomes[p.parent2].num_genes())
                        as u64,
                }
            }
            ChildKind::CloneMutate | ChildKind::TopUp => {
                let mut crng = XorWow::seed_from_u64_value(p.seed);
                let mut recorder = SplitRecorder::new();
                slot.clone_from(&genomes[p.parent1]);
                slot.set_key(p.key);
                // A cloned child still streams through the PE (its genes
                // are "crossed" with themselves in hardware terms).
                ops.crossover += slot.num_genes() as u64;
                slot.mutate(config, &mut recorder, &mut crng, &mut ops);
                let genes_streamed = if p.kind == ChildKind::TopUp {
                    slot.num_genes() as u64
                } else {
                    genomes[p.parent1].num_genes() as u64
                };
                ChildOutcome {
                    requests: recorder.into_requests(),
                    ops,
                    genes_streamed,
                }
            }
        }
    };
    let outcomes: Vec<ChildOutcome> = match pool {
        Some(pool) => pool.map_mut(offspring.as_mut_slice(), build),
        None => offspring
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| build(i, slot))
            .collect(),
    };

    // ---- Phase 3: serial innovation assignment, canonical child order --
    let mut remap: Vec<(NodeId, NodeId)> = Vec::new();
    let mut children: Vec<ChildTrace> = Vec::with_capacity(plan.len());
    for ((p, outcome), slot) in plan.iter().zip(outcomes).zip(offspring.iter_mut()) {
        if !outcome.requests.is_empty() {
            remap.clear();
            for &(key, provisional) in &outcome.requests {
                remap.push((provisional, innovations.node_for_split(key)));
            }
            slot.remap_new_nodes(&remap);
        }
        children.push(ChildTrace {
            child_index: p.child_index,
            parent1: p.parent1,
            parent2: p.parent2,
            genes_streamed: outcome.genes_streamed,
            ops: outcome.ops,
            is_elite: p.kind == ChildKind::Elite,
        });
    }

    GenerationTrace {
        generation,
        children,
    }
}

/// Produces the next generation from an evaluated, speciated population.
///
/// Serial compatibility wrapper over [`reproduce_into`]: allocates a fresh
/// offspring vector and derives the per-child seed base from `rng`. Hot
/// callers ([`crate::Population`]) use `reproduce_into` directly with a
/// recycled arena and an optional executor.
pub fn reproduce(
    genomes: &[Genome],
    species: &SpeciesSet,
    config: &NeatConfig,
    innovations: &mut InnovationTracker,
    rng: &mut XorWow,
    generation: usize,
    next_key: &mut u64,
) -> ReproductionReport {
    let base_seed = (u64::from(rng.next_u32_value()) << 32) | u64::from(rng.next_u32_value());
    let mut offspring = Vec::new();
    let trace = reproduce_into(
        genomes,
        species,
        config,
        innovations,
        rng,
        generation,
        next_key,
        base_seed,
        None,
        &mut offspring,
        None,
    );
    ReproductionReport { offspring, trace }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(
        pop: usize,
    ) -> (
        Vec<Genome>,
        SpeciesSet,
        NeatConfig,
        InnovationTracker,
        XorWow,
    ) {
        let c = NeatConfig::builder(3, 1).pop_size(pop).build().unwrap();
        let mut rng = XorWow::seed_from_u64_value(42);
        let mut genomes: Vec<Genome> = (0..pop as u64)
            .map(|k| Genome::initial(k, &c, &mut rng))
            .collect();
        for (i, g) in genomes.iter_mut().enumerate() {
            g.set_fitness(i as f64);
        }
        let mut species = SpeciesSet::new();
        species.speciate(&genomes, &c, 0);
        species.share_fitness(&genomes);
        let innov = InnovationTracker::new(c.first_hidden_id());
        (genomes, species, c, innov, rng)
    }

    #[test]
    fn allocation_sums_to_pop_size() {
        for (adjusted, pop) in [
            (vec![0.5, 0.3, 0.2], 150usize),
            (vec![1.0], 10),
            (vec![0.0, 0.0], 20),
            (vec![0.9, 0.05, 0.03, 0.02], 7),
        ] {
            let alloc = allocate_offspring(&adjusted, pop, 2);
            assert_eq!(alloc.iter().sum::<usize>(), pop, "{adjusted:?}");
        }
    }

    #[test]
    fn allocation_respects_proportionality() {
        let alloc = allocate_offspring(&[0.8, 0.2], 100, 2);
        assert!(alloc[0] > alloc[1]);
    }

    #[test]
    fn reproduce_produces_exactly_pop_size() {
        let (genomes, species, c, mut innov, mut rng) = setup(30);
        let mut key = 1000;
        let report = reproduce(&genomes, &species, &c, &mut innov, &mut rng, 0, &mut key);
        assert_eq!(report.offspring.len(), 30);
        assert_eq!(report.trace.children.len(), 30);
    }

    #[test]
    fn plan_covers_population_with_sequential_keys_and_unique_seeds() {
        let (genomes, species, c, _innov, mut rng) = setup(40);
        let mut key = 500;
        let plan = plan_offspring(&genomes, &species, &c, &mut rng, 3, &mut key, 77);
        assert_eq!(plan.len(), 40);
        assert_eq!(key, 540);
        for (i, p) in plan.iter().enumerate() {
            assert_eq!(p.child_index, i);
            assert_eq!(p.key, 500 + i as u64);
            assert_eq!(p.seed, child_seed(77, 3, i as u64));
        }
        let mut seeds: Vec<u64> = plan.iter().map(|p| p.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 40, "per-child seeds must be distinct");
    }

    #[test]
    fn parallel_reproduction_is_bit_identical_to_serial() {
        let (genomes, species, c, _, _) = setup(40);
        let run = |pool: Option<&Executor>| {
            let mut innov = InnovationTracker::new(c.first_hidden_id());
            let mut rng = XorWow::seed_from_u64_value(7);
            let mut key = 1000;
            let mut offspring = Vec::new();
            let trace = reproduce_into(
                &genomes,
                &species,
                &c,
                &mut innov,
                &mut rng,
                0,
                &mut key,
                99,
                pool,
                &mut offspring,
                None,
            );
            (offspring, trace, innov.next_node_id())
        };
        let (serial_offspring, serial_trace, serial_next) = run(None);
        for workers in [1usize, 4, 8] {
            let pool = Executor::new(workers);
            let (par_offspring, par_trace, par_next) = run(Some(&pool));
            assert_eq!(serial_offspring, par_offspring, "workers={workers}");
            assert_eq!(serial_trace, par_trace, "workers={workers}");
            assert_eq!(serial_next, par_next, "workers={workers}");
        }
    }

    #[test]
    fn arena_reuse_is_bit_identical_to_fresh_buffers() {
        let (genomes, species, c, _, _) = setup(30);
        let run = |offspring: &mut Vec<Genome>| {
            let mut innov = InnovationTracker::new(c.first_hidden_id());
            let mut rng = XorWow::seed_from_u64_value(3);
            let mut key = 0;
            reproduce_into(
                &genomes, &species, &c, &mut innov, &mut rng, 0, &mut key, 5, None, offspring, None,
            )
        };
        let mut fresh = Vec::new();
        let t1 = run(&mut fresh);
        // Dirty arena: pre-populated with unrelated genomes of odd sizes.
        let mut dirty: Vec<Genome> = genomes.iter().rev().cloned().collect();
        dirty.truncate(17);
        let t2 = run(&mut dirty);
        assert_eq!(fresh, dirty);
        assert_eq!(t1, t2);
    }

    #[test]
    fn elites_are_preserved_verbatim() {
        let (genomes, species, c, mut innov, mut rng) = setup(30);
        let mut key = 1000;
        let report = reproduce(&genomes, &species, &c, &mut innov, &mut rng, 0, &mut key);
        let elite_traces: Vec<&ChildTrace> = report
            .trace
            .children
            .iter()
            .filter(|t| t.is_elite)
            .collect();
        assert!(!elite_traces.is_empty());
        for t in elite_traces {
            let child = &report.offspring[t.child_index];
            let parent = &genomes[t.parent1];
            assert_eq!(child.num_genes(), parent.num_genes());
            assert_eq!(t.ops.total(), 0, "elites bypass the PEs");
        }
    }

    #[test]
    fn children_are_valid_genomes() {
        let (genomes, species, c, mut innov, mut rng) = setup(50);
        let mut key = 0;
        let report = reproduce(&genomes, &species, &c, &mut innov, &mut rng, 0, &mut key);
        for child in &report.offspring {
            assert!(child.validate().is_ok());
        }
    }

    #[test]
    fn trace_records_crossover_work() {
        let (genomes, species, c, mut innov, mut rng) = setup(50);
        let mut key = 0;
        let report = reproduce(&genomes, &species, &c, &mut innov, &mut rng, 0, &mut key);
        let totals = report.trace.totals();
        assert!(totals.crossover > 0, "non-elite children stream genes");
        assert!(
            report.trace.total_ops() > totals.crossover,
            "mutations occurred"
        );
    }

    #[test]
    fn parents_come_from_top_fraction() {
        let (genomes, species, c, mut innov, mut rng) = setup(50);
        let mut key = 0;
        let report = reproduce(&genomes, &species, &c, &mut innov, &mut rng, 0, &mut key);
        // With one species of 50 and survival 0.2, parents are the top 10
        // (fitness 40..49).
        for t in report.trace.children.iter().filter(|t| !t.is_elite) {
            assert!(genomes[t.parent1].fitness().unwrap() >= 40.0);
            assert!(genomes[t.parent2].fitness().unwrap() >= 40.0);
        }
    }

    #[test]
    fn unique_keys_assigned() {
        let (genomes, species, c, mut innov, mut rng) = setup(20);
        let mut key = 500;
        let report = reproduce(&genomes, &species, &c, &mut innov, &mut rng, 0, &mut key);
        let mut keys: Vec<u64> = report.offspring.iter().map(|g| g.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 20, "genome keys must be unique");
        assert!(key >= 520);
    }

    #[test]
    fn reuse_statistic_positive_with_small_pool() {
        let (genomes, species, c, mut innov, mut rng) = setup(60);
        let mut key = 0;
        let report = reproduce(&genomes, &species, &c, &mut innov, &mut rng, 0, &mut key);
        // 60 children from a pool of 12 parents: some parent is reused.
        assert!(report.trace.fittest_parent_reuse() >= 5);
    }

    #[test]
    fn child_seed_is_sensitive_to_every_input() {
        let base = child_seed(1, 2, 3);
        assert_ne!(base, child_seed(2, 2, 3));
        assert_ne!(base, child_seed(1, 3, 3));
        assert_ne!(base, child_seed(1, 2, 4));
        assert_eq!(base, child_seed(1, 2, 3));
    }
}
