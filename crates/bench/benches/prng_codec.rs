//! Microbenchmarks of the two tightest hardware-model kernels: the
//! XOR-WOW PRNG and the 64-bit gene codec.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use genesys_core::codec;
use genesys_neat::gene::{ConnGene, NodeGene, NodeId};
use genesys_neat::XorWow;

fn bench_prng(c: &mut Criterion) {
    let mut group = c.benchmark_group("xorwow");
    group.throughput(Throughput::Elements(1));
    group.bench_function("next_u32", |b| {
        let mut rng = XorWow::seed_from_u64_value(1);
        b.iter(|| rng.next_u32_value());
    });
    group.bench_function("next_f64", |b| {
        let mut rng = XorWow::seed_from_u64_value(1);
        b.iter(|| rng.next_f64());
    });
    group.bench_function("next_gaussian", |b| {
        let mut rng = XorWow::seed_from_u64_value(1);
        b.iter(|| rng.next_gaussian());
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("gene_codec");
    group.throughput(Throughput::Elements(1));
    let node = NodeGene::hidden(NodeId(1234));
    let conn = ConnGene::new(NodeId(3), NodeId(77), -1.25);
    let node_word = codec::encode_node(&node);
    let conn_word = codec::encode_conn(&conn);
    group.bench_function("encode_node", |b| b.iter(|| codec::encode_node(&node)));
    group.bench_function("encode_conn", |b| b.iter(|| codec::encode_conn(&conn)));
    group.bench_function("decode_node", |b| b.iter(|| codec::decode(node_word)));
    group.bench_function("decode_conn", |b| b.iter(|| codec::decode(conn_word)));
    group.finish();
}

criterion_group!(benches, bench_prng, bench_codec);
criterion_main!(benches);
