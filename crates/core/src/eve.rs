//! The Evolution Engine (EvE): the PE array plus its gene-movement fabric.
//!
//! EvE "is responsible for carrying out the selection and reproduction part
//! of the NEAT algorithm across all genomes of the population. It consists
//! of a collection of processing elements (PEs) … a gene split unit …
//! an on-chip interconnect … and a gene merge unit." This module drives
//! those pieces round by round (one PE per child, per Section IV-C5) and
//! produces both the **functional result** (the child genomes, quantized
//! through the hardware gene encoding) and the **microarchitectural
//! accounting** (cycles, SRAM reads under the chosen NoC, op counts).

use crate::noc::{Noc, NocKind, NocStats};
use crate::pe::{EvePe, PeConfig};
use crate::selector::{MatingPlan, PeSchedule};
use crate::sram::GenomeBuffer;
use crate::stream::{align_parents, merge_child};
use genesys_neat::trace::{GenerationTrace, OpCounters};
use genesys_neat::Genome;

/// Genes dropped by the Gene Merge validity repairs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeDrops {
    /// Dangling or into-input connections.
    pub dangling: usize,
    /// Cycle-closing connections.
    pub cyclic: usize,
    /// Duplicate keys.
    pub duplicates: usize,
}

/// Result of one full reproduction pass through EvE.
#[derive(Debug)]
pub struct EveReport {
    /// The next generation, in child-index order.
    pub children: Vec<Genome>,
    /// Total EvE cycles (sum over rounds of the slowest PE).
    pub cycles: u64,
    /// Interconnect counters.
    pub noc: NocStats,
    /// Operation tallies across all PEs.
    pub ops: OpCounters,
    /// Gene Merge repair counts.
    pub drops: MergeDrops,
    /// Number of PE rounds executed.
    pub rounds: usize,
}

/// The EvE engine.
#[derive(Debug)]
pub struct EveEngine {
    num_pes: usize,
    pe_config: PeConfig,
    noc_kind: NocKind,
    prng_seed: u64,
}

impl EveEngine {
    /// Creates an engine with `num_pes` PEs fed by a NoC of `noc_kind`.
    pub fn new(num_pes: usize, pe_config: PeConfig, noc_kind: NocKind, prng_seed: u64) -> Self {
        assert!(num_pes > 0, "at least one PE required");
        EveEngine {
            num_pes,
            pe_config,
            noc_kind,
            prng_seed,
        }
    }

    /// Number of PEs.
    pub fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// Updates the PE configuration registers (done by the CPU between
    /// generations as genomes grow).
    pub fn set_pe_config(&mut self, pe_config: PeConfig) {
        self.pe_config = pe_config;
    }

    /// Executes one reproduction pass: every scheduled child is produced
    /// functionally by a PE; elites in `plans` are copied verbatim.
    ///
    /// `genomes` is the evaluated current generation; `next_key` supplies
    /// fresh genome keys. SRAM reads are charged through `buffer` according
    /// to the NoC's dedup behaviour; child genes are charged as writes.
    pub fn reproduce(
        &mut self,
        genomes: &[Genome],
        plans: &[MatingPlan],
        schedule: &PeSchedule,
        buffer: &mut GenomeBuffer,
        next_key: &mut u64,
    ) -> EveReport {
        let num_inputs = genomes.first().map_or(0, Genome::num_inputs);
        let num_outputs = genomes.first().map_or(0, Genome::num_outputs);
        let mut children: Vec<Option<Genome>> = vec![None; plans.len()];
        let mut ops = OpCounters::new();
        let mut drops = MergeDrops::default();
        let mut noc = Noc::new(self.noc_kind);
        let mut cycles = 0u64;

        // Elites bypass the PE array: one buffered read+write per gene.
        for plan in plans.iter().filter(|p| p.is_elite) {
            let mut elite = genomes[plan.fit_parent].clone();
            elite.set_key(*next_key);
            *next_key += 1;
            let genes = elite.num_genes() as u64;
            buffer.read_genes(genes);
            buffer.write_genes(genes);
            children[plan.child_index] = Some(elite);
        }

        // PE rounds.
        let mut pes: Vec<EvePe> = (0..self.num_pes)
            .map(|i| EvePe::new(self.pe_config.clone(), self.prng_seed ^ (i as u64) << 17))
            .collect();
        for round in &schedule.rounds {
            // Build each PE's aligned stream.
            let streams: Vec<_> = round
                .iter()
                .map(|p| align_parents(&genomes[p.fit_parent], &genomes[p.other_parent]))
                .collect();
            let longest = streams.iter().map(Vec::len).max().unwrap_or(0);
            // Cycle-accurate NoC accounting: each active PE requests one
            // gene from each parent stream per cycle.
            let mut requests: Vec<(u64, u32)> = Vec::with_capacity(2 * round.len());
            for t in 0..longest {
                requests.clear();
                for (plan, stream) in round.iter().zip(&streams) {
                    if t < stream.len() {
                        requests.push((genomes[plan.fit_parent].key(), t as u32));
                        if plan.other_parent != plan.fit_parent {
                            requests.push((genomes[plan.other_parent].key(), t as u32));
                        }
                    }
                }
                let reads = noc.distribute_cycle(&requests);
                buffer.read_genes(reads);
            }
            // Functional PE work + per-round timing (slowest PE).
            let mut round_cycles = 0u64;
            for ((plan, stream), pe) in round.iter().zip(&streams).zip(pes.iter_mut()) {
                let out = pe.produce_child(stream);
                round_cycles = round_cycles.max(out.cycles.total());
                ops.merge(&out.ops);
                noc.collect(out.genes.len() as u64);
                buffer.write_genes(out.genes.len() as u64);
                let report = merge_child(*next_key, num_inputs, num_outputs, out.genes)
                    .expect("gene merge repairs keep children valid");
                *next_key += 1;
                drops.dangling += report.dropped_dangling;
                drops.cyclic += report.dropped_cyclic;
                drops.duplicates += report.dropped_duplicates;
                children[plan.child_index] = Some(report.genome);
            }
            cycles += round_cycles;
        }

        EveReport {
            children: children
                .into_iter()
                .map(|c| c.expect("every child index planned"))
                .collect(),
            cycles,
            noc: *noc.stats(),
            ops,
            drops,
            rounds: schedule.rounds.len(),
        }
    }
}

/// Timing-only replay of a software reproduction trace — the paper's own
/// methodology ("these traces serve as proxy for our workloads when we
/// evaluate EVE and ADAM implementations", Section VI-A). Returns cycles
/// and NoC/SRAM counters without re-running the functional pipeline, so it
/// scales to the Atari-sized workloads of Figs 9/11.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayReport {
    /// Total EvE cycles.
    pub cycles: u64,
    /// Interconnect counters.
    pub noc: NocStats,
    /// SRAM reads (== `noc.sram_reads`) and child-gene writes.
    pub sram_writes: u64,
    /// Rounds executed.
    pub rounds: usize,
}

/// Replays `trace` (produced by [`genesys_neat::Population`]) against an
/// EvE with `num_pes` PEs and the given NoC, using `parent_sizes[i]` as the
/// gene count of parent genome `i` and `child_sizes[i]` for child `i`.
/// Uses the paper's GLR-aware greedy PE allocation; see
/// [`replay_trace_with_policy`] for the ablation knob.
pub fn replay_trace(
    trace: &GenerationTrace,
    parent_sizes: &[usize],
    child_sizes: &[usize],
    num_pes: usize,
    noc_kind: NocKind,
    buffer: &mut GenomeBuffer,
) -> ReplayReport {
    replay_trace_with_policy(
        trace,
        parent_sizes,
        child_sizes,
        num_pes,
        noc_kind,
        crate::selector::AllocPolicy::Greedy,
        buffer,
    )
}

/// [`replay_trace`] with an explicit PE allocation policy (the greedy vs
/// round-robin ablation of `DESIGN.md` §5).
#[allow(clippy::too_many_arguments)]
pub fn replay_trace_with_policy(
    trace: &GenerationTrace,
    parent_sizes: &[usize],
    child_sizes: &[usize],
    num_pes: usize,
    noc_kind: NocKind,
    policy: crate::selector::AllocPolicy,
    buffer: &mut GenomeBuffer,
) -> ReplayReport {
    use crate::selector::allocate_pes;
    let plans: Vec<MatingPlan> = trace
        .children
        .iter()
        .map(|c| MatingPlan {
            child_index: c.child_index,
            fit_parent: c.parent1,
            other_parent: c.parent2,
            is_elite: c.is_elite,
        })
        .collect();
    let schedule = allocate_pes(&plans, num_pes, policy);
    let mut noc = Noc::new(noc_kind);
    let mut cycles = 0u64;

    for plan in plans.iter().filter(|p| p.is_elite) {
        let genes = parent_sizes[plan.fit_parent] as u64;
        buffer.read_genes(genes);
        buffer.write_genes(genes);
    }
    let mut requests: Vec<(u64, u32)> = Vec::with_capacity(2 * num_pes);
    for round in &schedule.rounds {
        let stream_len =
            |p: &MatingPlan| parent_sizes[p.fit_parent].max(parent_sizes[p.other_parent]) as u64;
        let longest = round.iter().map(stream_len).max().unwrap_or(0);
        for t in 0..longest {
            requests.clear();
            for plan in round {
                if t < stream_len(plan) {
                    requests.push((plan.fit_parent as u64, t as u32));
                    if plan.other_parent != plan.fit_parent {
                        requests.push((plan.other_parent as u64, t as u32));
                    }
                }
            }
            let reads = noc.distribute_cycle(&requests);
            buffer.read_genes(reads);
        }
        // Slowest PE: setup 2 + stream + drain 4 (add-extra folded into the
        // recorded per-child op counts is negligible at this granularity).
        cycles += 2 + longest + 4;
        for plan in round {
            let child_genes = child_sizes.get(plan.child_index).copied().unwrap_or(0) as u64;
            noc.collect(child_genes);
            buffer.write_genes(child_genes);
        }
    }
    ReplayReport {
        cycles,
        noc: *noc.stats(),
        sram_writes: buffer.stats().writes,
        rounds: schedule.rounds.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::{allocate_pes, select_parents, AllocPolicy};
    use crate::sram::SramConfig;
    use genesys_neat::{NeatConfig, Population, SpeciesSet, XorWow};

    fn evaluated_population(n: usize) -> (Vec<Genome>, NeatConfig) {
        let c = NeatConfig::builder(3, 1).pop_size(n).build().unwrap();
        let mut rng = XorWow::seed_from_u64_value(21);
        let mut genomes: Vec<Genome> = (0..n as u64)
            .map(|k| Genome::initial(k, &c, &mut rng))
            .collect();
        for (i, g) in genomes.iter_mut().enumerate() {
            g.set_fitness((i % 7) as f64);
        }
        (genomes, c)
    }

    fn run_reproduction(num_pes: usize) -> (EveReport, Vec<Genome>, NeatConfig) {
        let (genomes, c) = evaluated_population(24);
        let mut species = SpeciesSet::new();
        let mut rng = XorWow::seed_from_u64_value(5);
        let plans = select_parents(&genomes, &mut species, &c, 0, &mut rng);
        let schedule = allocate_pes(&plans, num_pes, AllocPolicy::Greedy);
        let pe_config = PeConfig::from_neat(&c, 5);
        let mut engine = EveEngine::new(num_pes, pe_config, NocKind::MulticastTree, 99);
        let mut buffer = GenomeBuffer::new(SramConfig::default());
        let mut key = 1000;
        let report = engine.reproduce(&genomes, &plans, &schedule, &mut buffer, &mut key);
        (report, genomes, c)
    }

    #[test]
    fn reproduce_emits_full_generation_of_valid_children() {
        let (report, genomes, _) = run_reproduction(8);
        assert_eq!(report.children.len(), genomes.len());
        for child in &report.children {
            assert!(child.validate().is_ok());
            assert_eq!(child.num_inputs(), 3);
            assert_eq!(child.num_outputs(), 1);
        }
    }

    #[test]
    fn more_pes_means_fewer_rounds_and_fewer_cycles() {
        let (few, _, _) = run_reproduction(2);
        let (many, _, _) = run_reproduction(16);
        assert!(many.rounds < few.rounds);
        assert!(
            many.cycles < few.cycles,
            "{} !< {}",
            many.cycles,
            few.cycles
        );
    }

    #[test]
    fn multicast_reads_fewer_genes_than_p2p() {
        let (genomes, c) = evaluated_population(24);
        let mut species = SpeciesSet::new();
        let mut rng = XorWow::seed_from_u64_value(5);
        let plans = select_parents(&genomes, &mut species, &c, 0, &mut rng);
        let schedule = allocate_pes(&plans, 16, AllocPolicy::Greedy);
        let pe_config = PeConfig::from_neat(&c, 5);
        let mut key = 0;
        let mut buf1 = GenomeBuffer::new(SramConfig::default());
        let mut e1 = EveEngine::new(16, pe_config.clone(), NocKind::PointToPoint, 7);
        let p2p = e1.reproduce(&genomes, &plans, &schedule, &mut buf1, &mut key);
        let mut buf2 = GenomeBuffer::new(SramConfig::default());
        let mut e2 = EveEngine::new(16, pe_config, NocKind::MulticastTree, 7);
        let mc = e2.reproduce(&genomes, &plans, &schedule, &mut buf2, &mut key);
        assert!(
            mc.noc.sram_reads < p2p.noc.sram_reads,
            "multicast {} !< p2p {}",
            mc.noc.sram_reads,
            p2p.noc.sram_reads
        );
        assert_eq!(mc.noc.flits_delivered, p2p.noc.flits_delivered);
    }

    #[test]
    fn ops_are_recorded() {
        let (report, _, _) = run_reproduction(8);
        assert!(report.ops.crossover > 0);
    }

    #[test]
    fn replay_matches_functional_round_count() {
        let c = NeatConfig::builder(2, 1).pop_size(20).build().unwrap();
        let mut pop = Population::new(c, 3);
        pop.evolve_once(|net| net.activate(&[0.4, 0.6])[0]);
        let trace = pop.last_trace().unwrap();
        let parent_sizes = vec![5usize; 20];
        let child_sizes: Vec<usize> = pop.genomes().iter().map(Genome::num_genes).collect();
        let mut buffer = GenomeBuffer::new(SramConfig::default());
        let report = replay_trace(
            trace,
            &parent_sizes,
            &child_sizes,
            4,
            NocKind::MulticastTree,
            &mut buffer,
        );
        let non_elite = trace.children.iter().filter(|t| !t.is_elite).count();
        assert_eq!(report.rounds, non_elite.div_ceil(4));
        assert!(report.cycles > 0);
        assert!(report.noc.sram_reads > 0);
    }

    #[test]
    fn replay_multicast_beats_p2p_on_shared_parents() {
        let c = NeatConfig::builder(2, 1).pop_size(40).build().unwrap();
        let mut pop = Population::new(c, 4);
        pop.evolve_once(|net| net.activate(&[0.4, 0.6])[0]);
        let trace = pop.last_trace().unwrap();
        let parent_sizes = vec![5usize; 40];
        let child_sizes = vec![5usize; 40];
        let mut b1 = GenomeBuffer::new(SramConfig::default());
        let p2p = replay_trace(
            trace,
            &parent_sizes,
            &child_sizes,
            16,
            NocKind::PointToPoint,
            &mut b1,
        );
        let mut b2 = GenomeBuffer::new(SramConfig::default());
        let mc = replay_trace(
            trace,
            &parent_sizes,
            &child_sizes,
            16,
            NocKind::MulticastTree,
            &mut b2,
        );
        assert!(mc.noc.sram_reads < p2p.noc.sram_reads);
    }
}
