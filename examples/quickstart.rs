//! Quickstart: evolve a CartPole controller through the session API.
//!
//! One `Session` is the whole run surface: a config + seed, a workload
//! (here the gym's `EpisodeEvaluator`), an optional worker pool, and
//! streaming per-generation observers. Fitness is bit-identical at any
//! `--threads` count — every episode seed derives from
//! `(seed, generation, genome index)`, never from evaluation order.
//!
//! Run with: `cargo run --release --example quickstart`
//! (flags: `--pop N --generations N --threads N --seed N`)

use genesys::gym::{EnvKind, EpisodeEvaluator};
use genesys::neat::Session;
use genesys_bench::ExperimentArgs;

fn main() {
    let args = ExperimentArgs::parse();
    let mut config = EnvKind::CartPole.neat_config(); // pop 150, target 195
    config.pop_size = args.pop_or(config.pop_size);

    let mut session = Session::builder(config, args.base_seed(2024))
        .expect("valid config")
        .workload(EpisodeEvaluator::new(EnvKind::CartPole).episodes(2))
        .threads(args.threads_or(4)) // default: the paper's PLP configuration (CPU_b)
        .observe(|event| println!("{}", event.stats))
        .build();

    println!("evolving CartPole-v0 (target fitness 195)...");
    let result = session.run(args.generations_or(60));

    let best = result.best.as_ref().expect("at least one generation ran");
    println!(
        "\noutcome: {:?} — best fitness {:.1}, genome has {} nodes / {} connections",
        result.outcome,
        best.fitness().unwrap_or(0.0),
        best.num_nodes(),
        best.num_conns(),
    );
    if result.converged() {
        println!("target reached: NEAT evolved a balancing controller from zero weights.");
    } else {
        println!("target not reached within the generation budget (evolution is stochastic —");
        println!("the paper's Fig 4 shows convergence varying from gen 8 to gen 160).");
    }
}
