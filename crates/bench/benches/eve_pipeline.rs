//! Throughput of the EvE PE functional pipeline versus genome size — the
//! simulator kernel behind every evolution-phase number.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use genesys_core::{align_parents, EvePe, PeConfig};
use genesys_neat::trace::OpCounters;
use genesys_neat::{Genome, InnovationTracker, NeatConfig, XorWow};

fn grown_genome(target_genes: usize) -> (Genome, NeatConfig) {
    let config = NeatConfig::builder(8, 2).build().unwrap();
    let mut rng = XorWow::seed_from_u64_value(5);
    let mut innov = InnovationTracker::new(config.first_hidden_id());
    let mut g = Genome::initial(0, &config, &mut rng);
    let mut ops = OpCounters::new();
    while g.num_genes() < target_genes {
        g.mutate_add_node(&mut innov, &mut rng, &mut ops);
        g.mutate_add_conn(&mut rng, &mut ops);
    }
    (g, config)
}

fn bench_pe(c: &mut Criterion) {
    let mut group = c.benchmark_group("eve_pe_produce_child");
    for &genes in &[16usize, 128, 1024] {
        let (genome, config) = grown_genome(genes);
        let stream = align_parents(&genome, &genome.clone());
        let pe_config = PeConfig::from_neat(&config, genes);
        group.throughput(Throughput::Elements(stream.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(genes), &stream, |b, s| {
            let mut pe = EvePe::new(pe_config.clone(), 11);
            b.iter(|| pe.produce_child(s));
        });
    }
    group.finish();
}

fn bench_align(c: &mut Criterion) {
    let mut group = c.benchmark_group("gene_split_align");
    for &genes in &[128usize, 1024] {
        let (genome, _) = grown_genome(genes);
        let other = genome.clone();
        group.throughput(Throughput::Elements(genes as u64));
        group.bench_with_input(BenchmarkId::from_parameter(genes), &genes, |b, _| {
            b.iter(|| align_parents(&genome, &other));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pe, bench_align);
criterion_main!(benches);
