//! Desktop and embedded CPU cost models.
//!
//! The paper measures an optimized NEAT implementation on a 6th-gen Intel
//! i7 (power via Intel's power gadget) and an ARM Cortex-A57 on a Jetson
//! TX2 (power via the onboard INA3221). Without that bench, this model is
//! **trace-driven**: per-operation latencies (calibrated to published
//! per-core throughputs of the two parts, with interpreter/runtime
//! overheads folded in) are multiplied by the *measured* op counts of our
//! NEAT runs. Relative magnitudes — the only thing Fig 9's log-scale
//! comparison consumes — are preserved.

use crate::platform::WorkloadProfile;

/// A CPU device's cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Device name.
    pub name: &'static str,
    /// Nanoseconds per inference MAC (runtime overhead folded in).
    pub per_mac_ns: f64,
    /// Per-environment-step framework overhead, ns (graph walk, packing).
    pub per_step_overhead_ns: f64,
    /// Nanoseconds per crossover/mutation operation.
    pub per_evo_op_ns: f64,
    /// Per-child bookkeeping overhead, ns.
    pub per_child_overhead_ns: f64,
    /// Package power while busy, watts.
    pub power_w: f64,
    /// Measured speedup of 4-thread PLP inference (paper: 3.5×).
    pub plp_speedup: f64,
}

impl CpuModel {
    /// 6th-generation Intel i7 desktop (CPU_a / CPU_b rows).
    pub fn i7() -> Self {
        CpuModel {
            name: "6th gen i7",
            per_mac_ns: 25.0,
            per_step_overhead_ns: 4_000.0,
            per_evo_op_ns: 120.0,
            per_child_overhead_ns: 2_000.0,
            power_w: 45.0,
            plp_speedup: 3.5,
        }
    }

    /// ARM Cortex-A57 on the Jetson TX2 (CPU_c / CPU_d rows). Roughly 5×
    /// slower per op at an order of magnitude less power.
    pub fn cortex_a57() -> Self {
        CpuModel {
            name: "ARM Cortex A57",
            per_mac_ns: 120.0,
            per_step_overhead_ns: 18_000.0,
            per_evo_op_ns: 600.0,
            per_child_overhead_ns: 9_000.0,
            power_w: 5.0,
            plp_speedup: 3.5,
        }
    }

    /// Inference runtime per generation, seconds. `plp` enables the
    /// 4-thread population-parallel variant (CPU_b / CPU_d).
    pub fn inference_time_s(&self, w: &WorkloadProfile, plp: bool) -> f64 {
        let serial_ns = w.inference_macs as f64 * self.per_mac_ns
            + w.env_steps as f64 * self.per_step_overhead_ns;
        let ns = if plp {
            serial_ns / self.plp_speedup
        } else {
            serial_ns
        };
        ns / 1e9
    }

    /// Evolution runtime per generation, seconds (always serial on the
    /// CPU configurations of Table III).
    pub fn evolution_time_s(&self, w: &WorkloadProfile) -> f64 {
        (w.evolution_ops as f64 * self.per_evo_op_ns
            + w.pop_size as f64 * self.per_child_overhead_ns)
            / 1e9
    }

    /// Energy for a runtime at this device's busy power, joules.
    pub fn energy_j(&self, time_s: f64) -> f64 {
        self.power_w * time_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> WorkloadProfile {
        WorkloadProfile {
            label: "CartPole_v0".into(),
            pop_size: 150,
            env_steps: 15_000,
            inference_macs: 150_000,
            evolution_ops: 8_000,
            total_genes: 2_000,
            max_nodes: 12,
            mean_nodes: 7.0,
        }
    }

    #[test]
    fn plp_speeds_up_inference_by_three_and_a_half() {
        let cpu = CpuModel::i7();
        let w = profile();
        let serial = cpu.inference_time_s(&w, false);
        let plp = cpu.inference_time_s(&w, true);
        assert!((serial / plp - 3.5).abs() < 1e-9);
    }

    #[test]
    fn embedded_cpu_is_slower_but_lower_energy_per_second() {
        let i7 = CpuModel::i7();
        let a57 = CpuModel::cortex_a57();
        let w = profile();
        assert!(a57.inference_time_s(&w, false) > i7.inference_time_s(&w, false));
        assert!(a57.power_w < i7.power_w);
    }

    #[test]
    fn runtime_scales_with_op_counts() {
        let cpu = CpuModel::i7();
        let small = profile();
        let mut big = profile();
        big.inference_macs *= 10;
        big.env_steps *= 10;
        big.evolution_ops *= 10;
        assert!(cpu.inference_time_s(&big, false) > 9.0 * cpu.inference_time_s(&small, false));
        assert!(cpu.evolution_time_s(&big) > 5.0 * cpu.evolution_time_s(&small));
    }

    #[test]
    fn energy_is_power_times_time() {
        let cpu = CpuModel::i7();
        assert!((cpu.energy_j(2.0) - 90.0).abs() < 1e-12);
    }

    #[test]
    fn magnitudes_are_sane_for_cartpole() {
        // Fig 9(a) shows CPU inference per generation in the ms–s range
        // for the small workloads.
        let cpu = CpuModel::i7();
        let t = cpu.inference_time_s(&profile(), false);
        assert!((1e-4..10.0).contains(&t), "got {t}");
    }
}
