//! Continuous learning — the paper's title scenario, with a power cycle
//! in the middle.
//!
//! The environment drifts: every few generations the cart-pole's physics
//! change (pole length, motor force). The evolving population keeps
//! adapting, because evolution *is* its steady state. This demo goes one
//! step further than watching fitness recover: **mid-drift, the run is
//! checkpointed to a binary snapshot, torn down, restored from bytes and
//! resumed** — and the resumed half is verified bit-identical to a run
//! that never stopped. That is the full continuous-learning loop GeneSys
//! argues for: learning that survives the power switch.
//!
//! Determinism note: drift regimes and episode seeds derive purely from
//! `(seed, generation, genome index)` — the order-dependent episode
//! counter this example once used could not be checkpointed, because its
//! value depended on thread scheduling.
//!
//! Run with: `cargo run --release --example continuous_learning`
//! (flags: `--pop N --generations N --threads N --seed N`)

use genesys::gym::DriftingEvaluator;
use genesys::neat::{GenerationStats, NeatConfig, Session};
use genesys::soc::{snapshot_from_bytes, snapshot_to_bytes};
use genesys_bench::ExperimentArgs;

fn main() {
    let args = ExperimentArgs::parse();
    let pop = args.pop_or(96);
    let generations = args.generations_or(24);
    let checkpoint_at = generations / 2;
    let world_seed = args.base_seed(4242);
    let threads = args.threads_or(4);

    let config = NeatConfig::builder(4, 1)
        .pop_size(pop)
        .build()
        .expect("valid");
    // One shared drifting world: all genomes face the same physics, and
    // the regime advances with the global episode index (pop episodes per
    // generation, new regime every 300 episodes ≈ every ~3 generations).
    let workload = || DriftingEvaluator::new(world_seed, 300, pop as u64);
    let print_generation = move |stats: &GenerationStats, last_regime: &mut u64| {
        let probe =
            DriftingEvaluator::new(world_seed, 300, pop as u64).probe(stats.generation as u64 + 1);
        let (len, force) = probe.physics();
        let regime = probe.regime();
        let marker = if regime != *last_regime {
            "  <-- regime shift"
        } else {
            ""
        };
        *last_regime = regime;
        println!(
            "{:>3} | {:>6} | {:>8.2} | {:>5.1} | {:>8.1} | {:>8.1}{}",
            stats.generation, regime, len, force, stats.max_fitness, stats.mean_fitness, marker
        );
    };

    println!("gen | regime | pole len | force | best fit | mean fit");
    let mut last_regime = u64::MAX;

    // ---- Phase 1: evolve up to the checkpoint --------------------------
    let mut session = Session::builder(config.clone(), world_seed)
        .expect("valid config")
        .workload(workload())
        .threads(threads)
        .build();
    for _ in 0..checkpoint_at {
        let stats = session.step();
        print_generation(&stats, &mut last_regime);
    }

    // ---- Checkpoint: serialize the full evolution state to bytes -------
    let bytes = snapshot_to_bytes(&session.export_state()).expect("encodable state");
    let path = std::env::temp_dir().join("genesys_continuous_learning.snapshot");
    std::fs::write(&path, &bytes).expect("write checkpoint");
    println!(
        "--- power cycle: {} B checkpoint written to {} ---",
        bytes.len(),
        path.display()
    );
    drop(session); // the "device" loses power

    // ---- Phase 2: restore from disk and keep adapting ------------------
    let restored = snapshot_from_bytes(&std::fs::read(&path).expect("read checkpoint"))
        .expect("valid checkpoint");
    let mut resumed = Session::resume(restored)
        .expect("restorable state")
        .workload(workload())
        .threads(threads)
        .build();
    let mut resumed_history = Vec::new();
    for _ in checkpoint_at..generations {
        let stats = resumed.step();
        print_generation(&stats, &mut last_regime);
        resumed_history.push(stats);
    }

    // ---- Proof: the resumed run is the uninterrupted run ---------------
    let mut uninterrupted = Session::builder(config, world_seed)
        .expect("valid config")
        .workload(workload())
        .build(); // serial on purpose: worker count cannot matter either
    let reference = uninterrupted.run(generations);
    assert_eq!(
        &reference.history[checkpoint_at..],
        &resumed_history[..],
        "resumed trajectory must be bit-identical to the uninterrupted run"
    );
    assert_eq!(
        uninterrupted.genomes(),
        resumed.genomes(),
        "final genomes must be byte-identical"
    );

    println!("\nverified: checkpoint at generation {checkpoint_at} + restore + resume is");
    println!("bit-identical to a run that never stopped (genomes, fitness, species),");
    println!("even across different worker counts. The population re-adapts after");
    println!("every physics shift with no reset or retraining — and now it survives");
    println!("power cycles, too: the continuous-learning loop GeneSys is designed");
    println!("to keep running at the edge.");
}
