//! Fig 4: evolution behaviour as a function of generation.
//!
//! (a) normalized fitness, (b) total gene count, (c) fittest-parent reuse
//! — all measured from real `genesys-neat` runs on the Table I suite.
//!
//! Usage: `fig04_evolution [--pop N] [--generations N] [--threads N] [--seed N]
//!                          [--islands N] [--migration-interval N]`

use genesys_bench::{print_table, run_workload_islands, ExperimentArgs};
use genesys_gym::EnvKind;

fn main() {
    let args = ExperimentArgs::parse();
    let pop = args.pop_or(64);
    let generations = args.generations_or(12);
    let seed = args.base_seed(100);
    let islands = args.islands_or(1);
    let migration_interval = args.migration_interval_or(0);
    let pool = args.pool();

    // Fig 4(a)/(b) use these four workloads in the paper.
    let curve_envs = [
        EnvKind::CartPole,
        EnvKind::LunarLander,
        EnvKind::MountainCar,
        EnvKind::Asterix,
    ];
    let mut runs = Vec::new();
    for (i, kind) in curve_envs.iter().enumerate() {
        eprintln!(
            "running {} ({} generations, pop {pop})...",
            kind.label(),
            generations
        );
        runs.push(run_workload_islands(
            *kind,
            generations,
            seed + i as u64,
            Some(pop),
            pool.as_ref(),
            islands,
            migration_interval,
        ));
    }

    // ---- Fig 4(a): normalized fitness vs generation ----------------------
    let mut rows = Vec::new();
    for gen in 0..generations {
        let mut row = vec![format!("{gen}")];
        for run in &runs {
            let hist = &run.history;
            let (lo, hi) = hist
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), s| {
                    (l.min(s.max_fitness), h.max(s.max_fitness))
                });
            let norm = if hi > lo {
                (hist[gen].max_fitness - lo) / (hi - lo)
            } else {
                1.0
            };
            row.push(format!("{norm:.3}"));
        }
        rows.push(row);
    }
    let mut header = vec!["Gen"];
    let labels: Vec<&str> = curve_envs.iter().map(|k| k.label()).collect();
    header.extend(labels.iter());
    print_table(
        "Fig 4(a): normalized max fitness vs generation",
        &header,
        &rows,
    );

    // ---- Fig 4(b): total genes vs generation -----------------------------
    let rows: Vec<Vec<String>> = (0..generations)
        .map(|gen| {
            let mut row = vec![format!("{gen}")];
            for run in &runs {
                row.push(format!("{}", run.history[gen].total_genes));
            }
            row
        })
        .collect();
    print_table(
        "Fig 4(b): population gene count vs generation",
        &header,
        &rows,
    );

    // ---- Fig 4(c): fittest-parent reuse vs generation ---------------------
    let reuse_envs = EnvKind::FIG9_SUITE;
    let mut reuse_runs = Vec::new();
    for (i, kind) in reuse_envs.iter().enumerate() {
        eprintln!("reuse profiling {}...", kind.label());
        reuse_runs.push(run_workload_islands(
            *kind,
            generations.min(8),
            seed + 100 + i as u64,
            Some(pop),
            pool.as_ref(),
            islands,
            migration_interval,
        ));
    }
    let mut header = vec!["Gen".to_string()];
    header.extend(reuse_envs.iter().map(|k| k.label().to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = (0..generations.min(8))
        .map(|gen| {
            let mut row = vec![format!("{gen}")];
            for run in &reuse_runs {
                row.push(format!("{}", run.history[gen].fittest_parent_reuse));
            }
            row
        })
        .collect();
    print_table(
        "Fig 4(c): fittest-parent reuse (GLR) vs generation",
        &header_refs,
        &rows,
    );
    let max_reuse = reuse_runs
        .iter()
        .flat_map(|r| r.history.iter().map(|s| s.fittest_parent_reuse))
        .max()
        .unwrap_or(0);
    println!(
        "\nPeak single-parent reuse observed: {max_reuse} children \
         (paper: ~20 typical, up to 80 of 150)"
    );
}
