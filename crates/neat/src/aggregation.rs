//! Node aggregation functions.
//!
//! A node gene's *aggregation* attribute (3 bits in the hardware gene word,
//! Fig 6) selects how incoming weighted activations are combined before the
//! activation function is applied.

use crate::rng::XorWow;
use std::fmt;

/// Aggregation applied to the weighted inputs of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
#[repr(u8)]
pub enum Aggregation {
    /// Arithmetic sum (the classic NEAT default, and the only one ADAM's
    /// MAC array implements natively).
    #[default]
    Sum = 0,
    /// Product of all inputs.
    Product = 1,
    /// Maximum input.
    Max = 2,
    /// Minimum input.
    Min = 3,
    /// Arithmetic mean.
    Mean = 4,
    /// Input with the largest absolute value.
    MaxAbs = 5,
    /// Median input.
    Median = 6,
}

/// Number of distinct aggregation kinds (fits the 3-bit hardware field).
pub const AGGREGATION_COUNT: u8 = 7;

impl Aggregation {
    /// All aggregation kinds, in hardware-encoding order.
    pub const ALL: [Aggregation; AGGREGATION_COUNT as usize] = [
        Aggregation::Sum,
        Aggregation::Product,
        Aggregation::Max,
        Aggregation::Min,
        Aggregation::Mean,
        Aggregation::MaxAbs,
        Aggregation::Median,
    ];

    /// Applies the aggregation to a slice of weighted inputs.
    ///
    /// An empty slice aggregates to `0.0` (product to `1.0`), matching
    /// `neat-python` semantics for nodes with no enabled incoming edges.
    pub fn apply(self, inputs: &[f64]) -> f64 {
        if inputs.is_empty() {
            return match self {
                Aggregation::Product => 1.0,
                _ => 0.0,
            };
        }
        match self {
            Aggregation::Sum => inputs.iter().sum(),
            Aggregation::Product => inputs.iter().product(),
            Aggregation::Max => inputs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Aggregation::Min => inputs.iter().copied().fold(f64::INFINITY, f64::min),
            Aggregation::Mean => inputs.iter().sum::<f64>() / inputs.len() as f64,
            Aggregation::MaxAbs => {
                inputs.iter().copied().fold(
                    0.0,
                    |best: f64, v| if v.abs() > best.abs() { v } else { best },
                )
            }
            Aggregation::Median => {
                let mut sorted = inputs.to_vec();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN inputs"));
                let mid = sorted.len() / 2;
                if sorted.len() % 2 == 1 {
                    sorted[mid]
                } else {
                    0.5 * (sorted[mid - 1] + sorted[mid])
                }
            }
        }
    }

    /// Hardware encoding (the 3-bit aggregation field of the gene word).
    pub fn to_code(self) -> u8 {
        self as u8
    }

    /// Decodes the 3-bit hardware field, wrapping out-of-range codes.
    pub fn from_code(code: u8) -> Aggregation {
        Aggregation::ALL[(code % AGGREGATION_COUNT) as usize]
    }

    /// Picks a uniformly random aggregation from `options`.
    ///
    /// Falls back to [`Aggregation::Sum`] when `options` is empty.
    pub fn random(rng: &mut XorWow, options: &[Aggregation]) -> Aggregation {
        if options.is_empty() {
            Aggregation::Sum
        } else {
            options[rng.below(options.len())]
        }
    }
}

impl fmt::Display for Aggregation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Aggregation::Sum => "sum",
            Aggregation::Product => "product",
            Aggregation::Max => "max",
            Aggregation::Min => "min",
            Aggregation::Mean => "mean",
            Aggregation::MaxAbs => "maxabs",
            Aggregation::Median => "median",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for agg in Aggregation::ALL {
            assert_eq!(Aggregation::from_code(agg.to_code()), agg);
        }
    }

    #[test]
    fn sum_and_mean() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(Aggregation::Sum.apply(&xs), 6.0);
        assert_eq!(Aggregation::Mean.apply(&xs), 2.0);
    }

    #[test]
    fn product_of_empty_is_one() {
        assert_eq!(Aggregation::Product.apply(&[]), 1.0);
        assert_eq!(Aggregation::Sum.apply(&[]), 0.0);
    }

    #[test]
    fn extremes() {
        let xs = [-5.0, 2.0, 4.0];
        assert_eq!(Aggregation::Max.apply(&xs), 4.0);
        assert_eq!(Aggregation::Min.apply(&xs), -5.0);
        assert_eq!(Aggregation::MaxAbs.apply(&xs), -5.0);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(Aggregation::Median.apply(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(Aggregation::Median.apply(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }
}
