//! # genesys-bench — the experiment harness
//!
//! Shared machinery for the binaries that regenerate every table and
//! figure of the GeneSys evaluation (see `DESIGN.md` §3 for the index and
//! `EXPERIMENTS.md` for paper-vs-measured records).
//!
//! The central artifact is a [`WorkloadRun`]: an actual multi-generation
//! run of `genesys-neat` on one Table I environment, with the measured op
//! counts, genome statistics and reproduction traces that drive (a) the
//! GeneSys SoC timing/energy models and (b) the CPU/GPU baseline models —
//! exactly the paper's trace-driven methodology (Section VI-A).

use genesys_core::{
    inference_timing, replay_trace, AdamConfig, GenomeBuffer, ReplayReport, SocConfig, TechModel,
};
use genesys_gym::{EnvKind, EpisodeEvaluator};
use genesys_neat::trace::GenerationTrace;
use genesys_neat::{Executor, GenerationStats, Genome, Network, Session};
use genesys_platforms::WorkloadProfile;
use std::sync::Arc;

/// One profiled evolution run on a workload.
#[derive(Debug)]
pub struct WorkloadRun {
    /// The workload.
    pub kind: EnvKind,
    /// Per-generation statistics (fitness, genes, ops, reuse).
    pub history: Vec<GenerationStats>,
    /// Trace of the final generation's reproduction.
    pub final_trace: GenerationTrace,
    /// Gene counts of the final parent generation (trace parent indices).
    pub parent_sizes: Vec<usize>,
    /// Gene counts of the children the trace produced.
    pub child_sizes: Vec<usize>,
    /// The final parent generation's genomes (for ADAM timing).
    pub parents: Vec<Genome>,
    /// Mean environment steps per generation (totalled over population).
    pub env_steps_per_gen: f64,
    /// Mean inference MACs per generation.
    pub macs_per_gen: f64,
}

impl WorkloadRun {
    /// Builds the [`WorkloadProfile`] consumed by the platform models,
    /// averaged over the profiled generations.
    pub fn profile(&self) -> WorkloadProfile {
        let gens = self.history.len().max(1) as f64;
        let evolution_ops: u64 =
            (self.history.iter().map(|s| s.ops.total()).sum::<u64>() as f64 / gens) as u64;
        let total_genes: u64 =
            (self.history.iter().map(|s| s.total_genes).sum::<usize>() as f64 / gens) as u64;
        let max_nodes = self
            .parents
            .iter()
            .map(Genome::num_nodes)
            .max()
            .unwrap_or(1);
        let mean_nodes = self
            .parents
            .iter()
            .map(|g| g.num_nodes() as f64)
            .sum::<f64>()
            / self.parents.len().max(1) as f64;
        WorkloadProfile {
            label: self.kind.label().to_string(),
            pop_size: self.parents.len(),
            env_steps: self.env_steps_per_gen as u64,
            inference_macs: self.macs_per_gen as u64,
            evolution_ops,
            total_genes,
            max_nodes,
            mean_nodes,
        }
    }
}

/// Runs `generations` generations of NEAT on `kind`, recording statistics.
/// `pop_size` overrides the paper's 150 (useful for fast smoke runs).
/// Evaluation is serial; use [`run_workload_on`] to fan episodes out over a
/// persistent work-stealing pool.
pub fn run_workload(
    kind: EnvKind,
    generations: usize,
    seed: u64,
    pop_size: Option<usize>,
) -> WorkloadRun {
    run_workload_on(kind, generations, seed, pop_size, None)
}

/// [`run_workload`] with an optional shared evaluation pool. Fitness is
/// **bit-identical** across pool sizes (including `None`): every genome's
/// episode seed derives from `(seed, generation, genome index)` via
/// [`genesys_gym::episode_seed`], never from evaluation order, so thread
/// scheduling cannot leak into the results (the executor's determinism
/// contract).
///
/// Since the session refactor this is a thin profiling loop over a
/// `genesys_neat::Session` driving an [`EpisodeEvaluator`]; seeds, the
/// evolution path and the per-worker rollout buffers are exactly the ones
/// the pre-session harness used, so recorded figures are unchanged.
pub fn run_workload_on(
    kind: EnvKind,
    generations: usize,
    seed: u64,
    pop_size: Option<usize>,
    pool: Option<&Arc<Executor>>,
) -> WorkloadRun {
    run_workload_islands(kind, generations, seed, pop_size, pool, 1, 0)
}

/// [`run_workload_on`] on the archipelago backend: `islands` islands with
/// ring migration every `migration_interval` generations (0 keeps the
/// config's default interval). `islands = 1` is exactly the monolithic
/// backend — same seeds, same results — so figure bins expose
/// `--islands`/`--migration-interval` without forking their run loops.
pub fn run_workload_islands(
    kind: EnvKind,
    generations: usize,
    seed: u64,
    pop_size: Option<usize>,
    pool: Option<&Arc<Executor>>,
    islands: usize,
    migration_interval: usize,
) -> WorkloadRun {
    let mut config = kind.neat_config();
    if let Some(p) = pop_size {
        config.pop_size = p;
    }
    config.islands = islands;
    if migration_interval > 0 {
        config.migration_interval = migration_interval;
    }
    let builder = Session::builder(config, seed).expect("workload presets are valid");
    let builder = match pool {
        Some(pool) => builder.executor(Arc::clone(pool)),
        None => builder,
    };
    let mut session = builder.workload(EpisodeEvaluator::new(kind)).build();

    let mut history = Vec::with_capacity(generations);
    let mut total_steps = 0u64;
    let mut total_macs = 0u64;
    let mut parents: Vec<Genome> = Vec::new();
    let mut parent_sizes: Vec<usize> = Vec::new();
    for _ in 0..generations {
        parents = session.genomes().to_vec();
        parent_sizes = parents.iter().map(Genome::num_genes).collect();
        let stats = session.step();
        total_steps += stats.env_steps;
        total_macs += stats.inference_macs * stats.env_steps / parents.len().max(1) as u64;
        history.push(stats);
    }
    let child_sizes: Vec<usize> = session.genomes().iter().map(Genome::num_genes).collect();
    let gens = generations.max(1) as f64;
    WorkloadRun {
        kind,
        final_trace: session.backend().last_trace().cloned().unwrap_or_default(),
        parent_sizes,
        child_sizes,
        parents,
        env_steps_per_gen: total_steps as f64 / gens,
        macs_per_gen: total_macs as f64 / gens,
        history,
    }
}

/// GeneSys per-generation runtime/energy derived from a workload run —
/// the SoC columns of Figs 9 and 10.
#[derive(Debug, Clone, Copy)]
pub struct GenesysCost {
    /// Inference runtime per generation, seconds.
    pub inference_s: f64,
    /// Evolution runtime per generation, seconds.
    pub evolution_s: f64,
    /// Inference energy per generation, joules.
    pub inference_j: f64,
    /// Evolution energy per generation, joules.
    pub evolution_j: f64,
    /// Genome-buffer traffic time (the SoC's "memcpy" analogue), seconds.
    pub buffer_transfer_s: f64,
    /// ADAM MAC utilization.
    pub adam_utilization: f64,
    /// EvE replay details.
    pub replay: ReplayReport,
}

/// Computes GeneSys costs for a profiled run under a SoC configuration.
pub fn genesys_cost(run: &WorkloadRun, soc: &SocConfig) -> GenesysCost {
    let tech: &TechModel = &soc.tech;
    let adam: &AdamConfig = &soc.adam;
    // ---- Inference ---------------------------------------------------------
    // GeneSys inference exploits PLP (Table III): the vectorize routine
    // packs ready vertices from *multiple genomes* into each matrix–vector
    // pass, so ADAM's 1024 MACs amortize across the population. We model a
    // 50 % packing efficiency plus one staging cycle per environment step.
    let pop = run.parents.len().max(1);
    let mean_steps = run.env_steps_per_gen / pop as f64;
    let mut macs = 0.0;
    let mut util_acc = 0.0;
    for genome in &run.parents {
        let net = Network::from_genome(genome).expect("profiled genomes are valid");
        let t = inference_timing(&net, adam);
        macs += mean_steps * t.macs as f64;
        util_acc += t.utilization;
    }
    const PACKING_EFFICIENCY: f64 = 0.5;
    let packed_cycles = macs / (adam.num_macs() as f64 * PACKING_EFFICIENCY);
    let staging_cycles = run.env_steps_per_gen;
    let inf_cycles = packed_cycles + staging_cycles;
    let inference_s = inf_cycles * tech.cycle_time_s();

    // ---- Evolution: trace replay on the EvE model -----------------------
    let mut buffer = GenomeBuffer::new(soc.sram);
    let resident: usize = run.parent_sizes.iter().sum::<usize>() * 2;
    buffer.set_resident(resident);
    let replay = replay_trace(
        &run.final_trace,
        &run.parent_sizes,
        &run.child_sizes,
        soc.num_eve_pes,
        soc.noc_kind,
        &mut buffer,
    );
    let evolution_s = replay.cycles as f64 * tech.cycle_time_s();

    // ---- Energy ----------------------------------------------------------
    let genes_streamed: u64 = run
        .final_trace
        .children
        .iter()
        .map(|c| c.genes_streamed)
        .sum();
    // Per-op dynamic energy plus the roofline SoC power over the phase's
    // runtime (the paper's pessimistic "always computing" assumption).
    let roofline_w = tech.roofline_power_mw(soc.num_eve_pes).total() / 1e3;
    let evolution_j = (genes_streamed as f64 * tech.e_pe_gene_pj
        + replay.noc.sram_reads as f64 * soc.sram.read_energy_pj
        + (replay.noc.flits_delivered + replay.noc.flits_collected) as f64 * tech.e_noc_flit_pj)
        / 1e12
        + roofline_w * evolution_s;
    // Inference reads: genomes mapped once + per-step vector staging.
    let inf_reads: f64 = run.parent_sizes.iter().sum::<usize>() as f64
        + run.env_steps_per_gen * (run.profile().mean_nodes);
    let inference_j = (macs * tech.e_mac_pj + inf_reads * soc.sram.read_energy_pj) / 1e12
        + roofline_w * inference_s;
    // Buffer transfer time: the *visible* (non-overlapped) traffic — genome
    // mapping at generation start, fitness/children writebacks, and the
    // evolution-phase NoC reads — served one word per bank-cycle across the
    // 48 banks. Per-step vector staging overlaps ADAM compute and is
    // excluded (that overlap is why the banked organization exists).
    let mapping_words = run.parent_sizes.iter().sum::<usize>() as f64;
    let writeback_words = run.child_sizes.iter().sum::<usize>() as f64 + pop as f64;
    let buffer_words = mapping_words + writeback_words + replay.noc.sram_reads as f64;
    let buffer_transfer_s = buffer_words / soc.sram.banks as f64 * tech.cycle_time_s();

    GenesysCost {
        inference_s,
        evolution_s,
        inference_j,
        evolution_j,
        buffer_transfer_s,
        adam_utilization: util_acc / pop as f64,
        replay,
    }
}

/// Formats a float in the paper's log-scale-friendly scientific notation.
pub fn sci(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else {
        format!("{v:9.2e}")
    }
}

/// Prints a header + aligned rows (simple fixed-width table).
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// The one CLI surface shared by every experiment binary:
/// `--pop N --generations N --runs N --threads N --seed N`, plus an
/// escape hatch ([`ExperimentArgs::get_usize`]) for bin-specific flags.
///
/// Every flag is optional; each binary supplies its own defaults through
/// the `*_or` accessors (full paper scale is reachable everywhere with
/// `--pop 150 --generations 100 --runs 100`). `--seed` shifts the base of
/// every workload seed, so any figure can be regenerated under a fresh
/// random universe without editing code.
#[derive(Debug, Clone)]
pub struct ExperimentArgs {
    /// `--pop`: population size.
    pub pop: Option<usize>,
    /// `--generations`: generations per run.
    pub generations: Option<usize>,
    /// `--runs`: independent runs per configuration.
    pub runs: Option<usize>,
    /// `--threads`: evaluation pool width (1 = serial).
    pub threads: Option<usize>,
    /// `--seed`: base seed override.
    pub seed: Option<u64>,
    raw: Vec<String>,
}

impl ExperimentArgs {
    /// Parses the process arguments.
    pub fn parse() -> Self {
        ExperimentArgs::from_args(std::env::args().collect())
    }

    /// Parses an explicit argument vector (tests).
    pub fn from_args(raw: Vec<String>) -> Self {
        let lookup = |key: &str| {
            raw.iter()
                .position(|a| a == key)
                .and_then(|i| raw.get(i + 1))
        };
        ExperimentArgs {
            pop: lookup("--pop").and_then(|v| v.parse().ok()),
            generations: lookup("--generations").and_then(|v| v.parse().ok()),
            runs: lookup("--runs").and_then(|v| v.parse().ok()),
            threads: lookup("--threads").and_then(|v| v.parse().ok()),
            seed: lookup("--seed").and_then(|v| v.parse().ok()),
            raw,
        }
    }

    /// Population size, with the binary's default.
    pub fn pop_or(&self, default: usize) -> usize {
        self.pop.unwrap_or(default)
    }

    /// Generation budget, with the binary's default.
    pub fn generations_or(&self, default: usize) -> usize {
        self.generations.unwrap_or(default)
    }

    /// Run count, with the binary's default.
    pub fn runs_or(&self, default: usize) -> usize {
        self.runs.unwrap_or(default)
    }

    /// Base seed: `--seed` when given, otherwise the binary's historical
    /// default (so default outputs stay reproducible across releases).
    pub fn base_seed(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }

    /// Worker count, with the binary's default. An explicit `--threads 1`
    /// really means serial — it is never overridden by the default.
    pub fn threads_or(&self, default: usize) -> usize {
        self.threads.unwrap_or(default)
    }

    /// Builds the shared evaluation pool requested by `--threads N`.
    /// `None` (N ≤ 1, the default) means serial evaluation; the pool is
    /// created once per binary and shared across every workload run, and
    /// results are identical either way by the determinism contract.
    pub fn pool(&self) -> Option<Arc<Executor>> {
        let threads = self.threads_or(1);
        if threads > 1 {
            eprintln!("evaluating on a persistent {threads}-worker pool");
            Some(Arc::new(Executor::new(threads)))
        } else {
            None
        }
    }

    /// Island count for the archipelago backend (`--islands`, default 1 =
    /// monolithic), shared by every figure bin so any experiment can be
    /// regenerated under barrier-free island scheduling.
    pub fn islands_or(&self, default: usize) -> usize {
        self.get_usize("--islands", default)
    }

    /// Generations between ring migrations (`--migration-interval`); only
    /// meaningful with `--islands` > 1.
    pub fn migration_interval_or(&self, default: usize) -> usize {
        self.get_usize("--migration-interval", default)
    }

    /// Applies the island flags to a config: `--islands` (default keeps
    /// `config.islands`) and `--migration-interval`.
    pub fn apply_islands(&self, config: &mut genesys_neat::NeatConfig) {
        config.islands = self.islands_or(config.islands);
        config.migration_interval = self.migration_interval_or(config.migration_interval);
    }

    /// Reads a bin-specific `--key value` flag.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.raw
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_workload_collects_history_and_trace() {
        let run = run_workload(EnvKind::CartPole, 3, 7, Some(16));
        assert_eq!(run.history.len(), 3);
        assert_eq!(run.parents.len(), 16);
        assert_eq!(run.parent_sizes.len(), 16);
        assert_eq!(run.child_sizes.len(), 16);
        assert!(!run.final_trace.children.is_empty());
        assert!(run.env_steps_per_gen > 0.0);
    }

    #[test]
    fn profile_reflects_measured_counts() {
        let run = run_workload(EnvKind::CartPole, 3, 7, Some(16));
        let p = run.profile();
        assert_eq!(p.pop_size, 16);
        assert!(p.env_steps > 0);
        assert!(p.evolution_ops > 0);
        assert!(p.total_genes > 0);
        assert!(p.mean_nodes >= 5.0);
    }

    #[test]
    fn genesys_cost_is_positive_and_fast() {
        let run = run_workload(EnvKind::CartPole, 2, 9, Some(16));
        let cost = genesys_cost(&run, &SocConfig::default());
        assert!(cost.inference_s > 0.0);
        assert!(cost.evolution_s > 0.0);
        assert!(cost.inference_j > 0.0);
        assert!(cost.evolution_j > 0.0);
        // Sub-millisecond evolution at 200 MHz for a small workload.
        assert!(cost.evolution_s < 1e-2, "{}", cost.evolution_s);
    }

    #[test]
    fn workload_fitness_identical_serial_vs_pool() {
        let serial = run_workload(EnvKind::CartPole, 3, 7, Some(16));
        for workers in [2usize, 4] {
            let pool = Arc::new(Executor::new(workers));
            let parallel = run_workload_on(EnvKind::CartPole, 3, 7, Some(16), Some(&pool));
            for (gen, (a, b)) in serial
                .history
                .iter()
                .zip(parallel.history.iter())
                .enumerate()
            {
                assert_eq!(
                    a.max_fitness, b.max_fitness,
                    "gen {gen} diverged at {workers} workers"
                );
                assert_eq!(a.total_genes, b.total_genes);
                assert_eq!(a.ops, b.ops);
            }
            assert_eq!(serial.env_steps_per_gen, parallel.env_steps_per_gen);
        }
    }

    #[test]
    fn pool_respects_threads_flag() {
        let to_args = |s: &[&str]| s.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(ExperimentArgs::from_args(to_args(&["--threads", "1"]))
            .pool()
            .is_none());
        assert!(ExperimentArgs::from_args(Vec::new()).pool().is_none());
        let pool = ExperimentArgs::from_args(to_args(&["--threads", "3"]))
            .pool()
            .expect("pool requested");
        assert_eq!(pool.workers(), 3);
    }

    #[test]
    fn experiment_args_parse_all_flags() {
        let to_args = |s: &[&str]| s.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let args = ExperimentArgs::from_args(to_args(&[
            "bin",
            "--pop",
            "32",
            "--generations",
            "5",
            "--runs",
            "2",
            "--threads",
            "4",
            "--seed",
            "1234",
            "--extra",
            "9",
        ]));
        assert_eq!(args.pop_or(64), 32);
        assert_eq!(args.generations_or(8), 5);
        assert_eq!(args.runs_or(3), 2);
        assert_eq!(args.threads_or(1), 4);
        assert_eq!(args.base_seed(0), 1234);
        assert_eq!(args.get_usize("--extra", 0), 9);

        let empty = ExperimentArgs::from_args(to_args(&["bin"]));
        assert_eq!(empty.pop_or(64), 64);
        assert_eq!(empty.base_seed(100), 100, "defaults keep historic seeds");
        assert!(empty.pool().is_none());
        assert_eq!(empty.threads_or(4), 4, "absent flag takes the default");
        let serial = ExperimentArgs::from_args(to_args(&["bin", "--threads", "1"]));
        assert_eq!(serial.threads_or(4), 1, "explicit --threads 1 wins");
    }
}
