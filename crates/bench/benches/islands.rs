//! Barrier-removal economics: one whole generation stepped through the
//! monolithic backend vs the [`Archipelago`] at the same population.
//!
//! On one core the island split must be free — the same work in a
//! different order, so `islands/step_4_islands` may not regress against
//! `islands/step_monolithic` (the bench-regression gate pins both). The
//! multi-worker rows show what removing the evaluate→speciate→reproduce
//! phase barriers buys when islands are scheduled as whole-generation
//! jobs on the shared executor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genesys_neat::{Backend, EvalContext, EvolutionBackend, Executor, NeatConfig, Network};
use std::sync::Arc;

const POP: usize = 4096;

fn proxy_fitness(_ctx: EvalContext, net: &Network) -> f64 {
    let mut fit = 0.0;
    for case in [
        [0.1, 0.9, 0.2, 0.8],
        [0.5, 0.5, 0.5, 0.5],
        [0.9, 0.1, 0.8, 0.2],
    ] {
        fit += net.activate(&case)[0];
    }
    fit
}

fn config(pop: usize, islands: usize) -> NeatConfig {
    NeatConfig::builder(4, 1)
        .pop_size(pop)
        .islands(islands)
        .migration_interval(2)
        .build()
        .unwrap()
}

fn bench_islands(c: &mut Criterion) {
    let mut group = c.benchmark_group("islands");

    // Serial parity: same population, 1 vs 4 islands, no pool. The gate's
    // 1-core guarantee — island bookkeeping may not cost a speedup.
    group.bench_with_input(BenchmarkId::new("step_monolithic", POP), &POP, |b, &n| {
        let mut backend = EvolutionBackend::new(config(n, 1), 1);
        b.iter(|| backend.step(&proxy_fitness, 1));
    });
    group.bench_with_input(BenchmarkId::new("step_4_islands", POP), &POP, |b, &n| {
        let mut backend = EvolutionBackend::new(config(n, 4), 1);
        b.iter(|| backend.step(&proxy_fitness, 1));
    });

    // Whole-generation island jobs on a shared pool: the barrier-free
    // scheduling the archipelago exists for (a min-time win over the
    // barrier'd monolithic run on multi-core hosts; parity on 1 core).
    let pool = Arc::new(Executor::new(4));
    group.bench_with_input(
        BenchmarkId::new("step_monolithic_4_workers", POP),
        &POP,
        |b, &n| {
            let mut backend = EvolutionBackend::new(config(n, 1), 1);
            backend.set_executor(Arc::clone(&pool));
            b.iter(|| backend.step(&proxy_fitness, 1));
        },
    );
    group.bench_with_input(
        BenchmarkId::new("step_4_islands_4_workers", POP),
        &POP,
        |b, &n| {
            let mut backend = EvolutionBackend::new(config(n, 4), 1);
            backend.set_executor(Arc::clone(&pool));
            b.iter(|| backend.step(&proxy_fitness, 1));
        },
    );

    group.finish();
}

criterion_group!(benches, bench_islands);
criterion_main!(benches);
