//! Smoke test for the workspace surface: the umbrella re-exports
//! (`genesys::neat`, `genesys::gym`, `genesys::soc`, `genesys::platforms`)
//! must stay addressable under their documented paths, and the `src/lib.rs`
//! quickstart must keep working when written against them.

use genesys::gym::{rollout, CartPole, Environment};
use genesys::neat::{NeatConfig, Population};
use genesys::platforms::{CpuModel, WorkloadProfile};
use genesys::soc::SocConfig;

/// Every umbrella module resolves and its headline types are constructible.
#[test]
fn umbrella_reexports_are_addressable() {
    let config: genesys::neat::NeatConfig = NeatConfig::for_env("cartpole", 4, 1);
    assert!(config.validate().is_ok());

    let mut env: CartPole = genesys::gym::CartPole::new(3);
    assert_eq!(env.reset().len(), 4);

    let soc: genesys::soc::SocConfig = SocConfig::default();
    assert!(soc.num_eve_pes > 0);

    let cpu: genesys::platforms::CpuModel = CpuModel::i7();
    let profile = WorkloadProfile {
        label: "smoke".into(),
        pop_size: 8,
        env_steps: 100,
        inference_macs: 1_000,
        evolution_ops: 100,
        total_genes: 64,
        max_nodes: 6,
        mean_nodes: 5.0,
    };
    assert!(cpu.inference_time_s(&profile, false) > 0.0);
}

/// The umbrella crate aliases point at the same crates the workspace
/// members export (spot-checked via type identity).
#[test]
fn umbrella_aliases_match_member_crates() {
    fn takes_member(c: genesys_bench::GenesysCost) -> genesys_bench::GenesysCost {
        c
    }
    // genesys_bench consumes genesys_core (= genesys::soc) types directly;
    // feeding it a config built through the umbrella path proves the alias
    // resolves to the same crate rather than a copy.
    let run = genesys_bench::run_workload(genesys::gym::EnvKind::CartPole, 1, 5, Some(8));
    let cost = takes_member(genesys_bench::genesys_cost(&run, &SocConfig::default()));
    assert!(cost.evolution_s > 0.0);
}

/// The `src/lib.rs` quickstart, as an integration test: one evolved
/// generation on CartPole through the umbrella paths only.
#[test]
fn quickstart_flow_runs() {
    let config = NeatConfig::for_env("cartpole", 4, 1);
    let mut pop = Population::new(config, 42);
    let stats = pop.evolve_once(|net| {
        let mut env = CartPole::new(7);
        rollout(net, &mut env, 1)
    });
    assert!(stats.max_fitness >= 0.0);
    assert_eq!(pop.generation(), 1);
}
