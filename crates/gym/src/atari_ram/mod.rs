//! Synthetic Atari-RAM environments.
//!
//! The paper's largest workloads observe the raw 128-byte RAM of Atari 2600
//! games ("128 bytes indicating the current state of the game RAM",
//! Table I). A licensed Atari emulator is out of scope, so this module
//! provides **RAM machines**: deterministic arcade-style games whose entire
//! state is packed into a 128-byte RAM exposed as the observation. This
//! preserves exactly what the hardware study consumes — 128-input genomes
//! (the ~110–120 k gene regime of Fig 4(b)), score-based fitness, and long
//! episodes — per the substitution table in `DESIGN.md`.
//!
//! Four games mirror the paper's suite: [`AirRaid`], [`Alien`], [`Amidar`]
//! and [`Asterix`].

mod airraid;
mod alien;
mod amidar;
mod asterix;

pub use airraid::AirRaid;
pub use alien::Alien;
pub use amidar::Amidar;
pub use asterix::Asterix;

use crate::env::{quantize_action, ActionKind, Environment};

/// Size of the exposed RAM, matching the Atari 2600's 128 bytes.
pub const RAM_SIZE: usize = 128;

/// A game whose full state serializes into a 128-byte RAM.
pub trait RamGame {
    /// Game name, matching the paper's workload labels.
    fn name(&self) -> &'static str;

    /// Number of discrete actions (button combinations).
    fn n_actions(&self) -> usize;

    /// Restarts the game (a fresh episode, re-deriving randomness from the
    /// construction seed stream).
    fn restart(&mut self);

    /// Advances one frame with the given action index; returns the score
    /// delta earned this frame.
    fn tick(&mut self, action: usize) -> f64;

    /// True once the game has ended (out of lives).
    fn game_over(&self) -> bool;

    /// Serializes the complete game state into `ram`. Bytes not used by
    /// the game must still be written deterministically.
    fn write_ram(&self, ram: &mut [u8; RAM_SIZE]);

    /// Current score (sum of all tick rewards).
    fn score(&self) -> f64;
}

/// Adapter exposing any [`RamGame`] through the [`Environment`] trait:
/// observation = the 128 RAM bytes scaled to `[0, 1]`, action = one network
/// output quantized to the game's button count.
#[derive(Debug, Clone)]
pub struct RamEnv<G> {
    game: G,
    ram: [u8; RAM_SIZE],
    steps: usize,
    max_steps: usize,
}

impl<G: RamGame> RamEnv<G> {
    /// Default episode frame limit.
    pub const DEFAULT_MAX_STEPS: usize = 2000;

    /// Wraps a game.
    pub fn new(game: G) -> Self {
        RamEnv {
            game,
            ram: [0; RAM_SIZE],
            steps: 0,
            max_steps: Self::DEFAULT_MAX_STEPS,
        }
    }

    /// Overrides the episode frame limit (useful to bound test runtimes).
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Direct access to the underlying game.
    pub fn game(&self) -> &G {
        &self.game
    }

    /// The raw RAM bytes of the last observation.
    pub fn ram(&self) -> &[u8; RAM_SIZE] {
        &self.ram
    }

    fn write_observation(&self, obs: &mut [f64]) {
        assert_eq!(obs.len(), RAM_SIZE, "RAM observation is 128 components");
        for (out, &b) in obs.iter_mut().zip(self.ram.iter()) {
            *out = f64::from(b) / 255.0;
        }
    }
}

impl<G: RamGame> Environment for RamEnv<G> {
    fn name(&self) -> &'static str {
        self.game.name()
    }

    fn observation_dim(&self) -> usize {
        RAM_SIZE
    }

    fn action_dim(&self) -> usize {
        1
    }

    fn action_kind(&self) -> ActionKind {
        ActionKind::Discrete(self.game.n_actions())
    }

    fn reset_into(&mut self, obs: &mut [f64]) {
        self.game.restart();
        self.steps = 0;
        self.game.write_ram(&mut self.ram);
        self.write_observation(obs);
    }

    fn step_into(&mut self, action: &[f64], obs: &mut [f64]) -> (f64, bool) {
        assert_eq!(action.len(), 1, "RAM games take one output (button press)");
        if self.game.game_over() || self.steps >= self.max_steps {
            self.write_observation(obs);
            return (0.0, true);
        }
        let button = quantize_action(action[0], self.game.n_actions());
        let reward = self.game.tick(button);
        self.steps += 1;
        self.game.write_ram(&mut self.ram);
        self.write_observation(obs);
        (
            reward,
            self.game.game_over() || self.steps >= self.max_steps,
        )
    }

    fn max_steps(&self) -> usize {
        self.max_steps
    }
}

/// `AirRaid-ram-v0` analogue.
pub type AirRaidRam = RamEnv<AirRaid>;
/// `Alien-ram-v0` analogue.
pub type AlienRam = RamEnv<Alien>;
/// `Amidar-ram-v0` analogue.
pub type AmidarRam = RamEnv<Amidar>;
/// `Asterix-ram-v0` analogue.
pub type AsterixRam = RamEnv<Asterix>;

impl AirRaidRam {
    /// Creates the AirRaid RAM environment.
    pub fn from_seed(seed: u64) -> Self {
        RamEnv::new(AirRaid::new(seed))
    }
}

impl AlienRam {
    /// Creates the Alien RAM environment.
    pub fn from_seed(seed: u64) -> Self {
        RamEnv::new(Alien::new(seed))
    }
}

impl AmidarRam {
    /// Creates the Amidar RAM environment.
    pub fn from_seed(seed: u64) -> Self {
        RamEnv::new(Amidar::new(seed))
    }
}

impl AsterixRam {
    /// Creates the Asterix RAM environment.
    pub fn from_seed(seed: u64) -> Self {
        RamEnv::new(Asterix::new(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<G: RamGame>(mut env: RamEnv<G>) {
        let obs = env.reset();
        assert_eq!(obs.len(), RAM_SIZE);
        assert!(obs.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let n = match env.action_kind() {
            ActionKind::Discrete(n) => n,
            ActionKind::Continuous(_) => panic!("RAM games are discrete"),
        };
        assert!(n >= 2);
        let mut total = 0.0;
        for t in 0..500 {
            let a = (t % n) as f64 / n as f64 + 0.01;
            let s = env.step(&[a]);
            total += s.reward;
            if s.done {
                break;
            }
        }
        assert!(total.is_finite());
    }

    #[test]
    fn all_games_run_and_expose_valid_ram() {
        exercise(AirRaidRam::from_seed(1));
        exercise(AlienRam::from_seed(1));
        exercise(AmidarRam::from_seed(1));
        exercise(AsterixRam::from_seed(1));
    }

    #[test]
    fn ram_env_is_deterministic() {
        let mut a = AlienRam::from_seed(9);
        let mut b = AlienRam::from_seed(9);
        a.reset();
        b.reset();
        for t in 0..300 {
            let act = [(t % 5) as f64 / 5.0 + 0.05];
            assert_eq!(a.step(&act), b.step(&act));
        }
    }

    #[test]
    fn max_steps_bounds_episode() {
        let mut env = AsterixRam::from_seed(3).with_max_steps(50);
        env.reset();
        let mut steps = 0;
        while !env.step(&[0.5]).done {
            steps += 1;
            assert!(steps <= 50);
        }
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(AirRaidRam::from_seed(0).name(), "AirRaid_ram_v0");
        assert_eq!(AlienRam::from_seed(0).name(), "Alien_ram_v0");
        assert_eq!(AmidarRam::from_seed(0).name(), "Amidar_ram_v0");
        assert_eq!(AsterixRam::from_seed(0).name(), "Asterix_ram_v0");
    }
}
