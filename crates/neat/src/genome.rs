//! Genomes: collections of genes describing one neural network.
//!
//! A genome stores its node and connection genes as **flat vectors sorted
//! by gene key**, mirroring the hardware genome buffer layout exactly: "the
//! genes are stored in two logical clusters, one for each type; within each
//! cluster, the genes are stored by sorting them in ascending order of IDs"
//! (Section IV-C5). Iterating [`Genome::nodes`] then [`Genome::conns`]
//! therefore reproduces the exact stream order the Gene Split block feeds
//! to the EvE PEs, and crossover/compatibility become sorted-merge walks
//! over the two parent streams — the same dataflow the PE's alignment
//! logic implements.
//!
//! The flat layout also enables the reproduction pipeline's allocation
//! diet: [`Genome::clone_from`] and [`Genome::crossover_into`] write into
//! an existing genome's buffers (capacity retained across generations by
//! the arena in [`crate::population`]) instead of allocating fresh maps per
//! child.

use crate::activation::Activation;
use crate::aggregation::Aggregation;
use crate::config::{InitialWeights, NeatConfig};
use crate::error::GenomeError;
use crate::gene::{ConnGene, ConnKey, NodeGene, NodeId, NodeType};
use crate::innovation::InnovationSource;
use crate::rng::XorWow;
use crate::trace::OpCounters;
use std::collections::{HashMap, HashSet};

/// Bytes per gene in the hardware encoding (64-bit gene word, Fig 6).
pub const GENE_BYTES: usize = 8;

/// Fixed-point scale of the signature's quantized weight sums: weights are
/// truncated to `2^-20` resolution, so each term carries strictly less
/// than one unit of quantization error — the slack the lower bound
/// subtracts back out.
const SIG_WEIGHT_SCALE: f64 = (1u64 << 20) as f64;

/// O(1) summary of a genome's gene set, maintained **incrementally** by
/// every mutation, crossover and clone path, from which
/// [`Genome::distance_lower_bound`] derives a provable lower bound on the
/// NEAT compatibility distance without touching the gene streams.
///
/// Contents (all updates are wrapping / XOR, so maintenance commutes and
/// an incremental signature is bit-equal to a from-scratch
/// [`Genome::recompute_signature`] after *any* mutation sequence):
///
/// * gene counts per cluster;
/// * a 128-bit **parity bitsketch** per cluster (`bit id % 128` for nodes,
///   a SplitMix-hashed bucket of the `(src, dst)` key for conns): the
///   popcount of two sketches' XOR never exceeds the symmetric difference
///   of the underlying key sets, so it lower-bounds the disjoint count;
/// * quantized weight moments (`Σ trunc(w·2^20)` and `Σ trunc(|w|·2^20)`)
///   that lower-bound the matched-weight distance when the conn key sets
///   are indistinguishable;
/// * a non-finite attribute counter (plus a guard for weights too large to
///   quantize): any non-zero count disables the bound entirely
///   (`-inf`), so NaN/infinity poisoning can never cause a wrong prune.
///
/// Signatures are **not serialized** in snapshots: they are recomputed by
/// the gene-insertion path when a genome is decoded, which keeps the wire
/// format independent of the sketch layout (see `docs/speciation.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GenomeSignature {
    node_count: u32,
    conn_count: u32,
    node_sketch: u128,
    conn_sketch: u128,
    weight_qsum: i64,
    weight_qabs: i64,
    nonfinite: u32,
}

impl GenomeSignature {
    /// From-scratch signature of two sorted gene clusters.
    pub(crate) fn of(nodes: &[NodeGene], conns: &[ConnGene]) -> GenomeSignature {
        let mut sig = GenomeSignature::default();
        for n in nodes {
            sig.add_node(n);
        }
        for c in conns {
            sig.add_conn(c);
        }
        sig
    }

    fn node_bit(id: NodeId) -> u128 {
        1u128 << (id.0 % 128)
    }

    fn conn_bit(key: ConnKey) -> u128 {
        // SplitMix64-style finalizer over the packed key so structurally
        // adjacent connections land in unrelated parity buckets.
        let mut z = ((u64::from(key.src.0) << 32) | u64::from(key.dst.0))
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        1u128 << (z & 127)
    }

    /// Non-finite tally of one node gene (bias and response counted
    /// separately, so attribute-level updates stay local).
    fn node_nonfinite(n: &NodeGene) -> u32 {
        u32::from(!n.bias.is_finite()) + u32::from(!n.response.is_finite())
    }

    /// Non-finite tally of one conn weight. Finite weights at or beyond
    /// the quantization scale also count: their `trunc(w·2^20)` term would
    /// carry more than one unit of error, which would break the
    /// subtracted-slack argument of the weight bound.
    fn weight_nonfinite(w: f64) -> u32 {
        u32::from(!w.is_finite() || w.abs() >= SIG_WEIGHT_SCALE)
    }

    /// `trunc(w·2^20)` — NaN quantizes to 0 and infinities saturate, both
    /// harmless because [`GenomeSignature::conn_nonfinite`] disables the
    /// bound for such genes.
    fn quantize(w: f64) -> i64 {
        (w * SIG_WEIGHT_SCALE) as i64
    }

    pub(crate) fn add_node(&mut self, n: &NodeGene) {
        self.node_count = self.node_count.wrapping_add(1);
        self.node_sketch ^= Self::node_bit(n.id);
        self.nonfinite = self.nonfinite.wrapping_add(Self::node_nonfinite(n));
    }

    pub(crate) fn remove_node(&mut self, n: &NodeGene) {
        self.node_count = self.node_count.wrapping_sub(1);
        self.node_sketch ^= Self::node_bit(n.id);
        self.nonfinite = self.nonfinite.wrapping_sub(Self::node_nonfinite(n));
    }

    pub(crate) fn add_conn(&mut self, c: &ConnGene) {
        self.conn_count = self.conn_count.wrapping_add(1);
        self.conn_sketch ^= Self::conn_bit(c.key);
        self.add_conn_weight(c.weight);
    }

    pub(crate) fn remove_conn(&mut self, c: &ConnGene) {
        self.conn_count = self.conn_count.wrapping_sub(1);
        self.conn_sketch ^= Self::conn_bit(c.key);
        self.remove_conn_weight(c.weight);
    }

    /// Weight-only update half: folds a weight into the moment sums
    /// (used when a mutation changes a weight without touching the key).
    pub(crate) fn add_conn_weight(&mut self, w: f64) {
        self.weight_qsum = self.weight_qsum.wrapping_add(Self::quantize(w));
        self.weight_qabs = self.weight_qabs.wrapping_add(Self::quantize(w.abs()));
        self.nonfinite = self.nonfinite.wrapping_add(Self::weight_nonfinite(w));
    }

    /// Inverse of [`GenomeSignature::add_conn_weight`].
    pub(crate) fn remove_conn_weight(&mut self, w: f64) {
        self.weight_qsum = self.weight_qsum.wrapping_sub(Self::quantize(w));
        self.weight_qabs = self.weight_qabs.wrapping_sub(Self::quantize(w.abs()));
        self.nonfinite = self.nonfinite.wrapping_sub(Self::weight_nonfinite(w));
    }

    /// Bias/response update half for in-place attribute mutations.
    pub(crate) fn replace_node_attr(&mut self, old: f64, new: f64) {
        self.nonfinite = self
            .nonfinite
            .wrapping_sub(u32::from(!old.is_finite()))
            .wrapping_add(u32::from(!new.is_finite()));
    }

    /// Moves one node id between sketch buckets (provisional-id remap).
    pub(crate) fn remap_node(&mut self, old: NodeId, new: NodeId) {
        self.node_sketch ^= Self::node_bit(old) ^ Self::node_bit(new);
    }

    /// Moves one conn key between sketch buckets (provisional-id remap).
    pub(crate) fn remap_conn(&mut self, old: ConnKey, new: ConnKey) {
        self.conn_sketch ^= Self::conn_bit(old) ^ Self::conn_bit(new);
    }

    /// True when any tracked attribute is non-finite (or a weight exceeds
    /// the quantization range): the lower bound is disabled for this
    /// genome.
    pub fn has_nonfinite(&self) -> bool {
        self.nonfinite != 0
    }

    /// Provable lower bound on `gene_distance(a, b)` (see
    /// [`Genome::distance_lower_bound`] for the contract). O(1).
    pub fn lower_bound(a: &GenomeSignature, b: &GenomeSignature, config: &NeatConfig) -> f64 {
        let cd = config.compatibility_disjoint_coefficient;
        let cw = config.compatibility_weight_coefficient;
        // Any non-finite coefficient or attribute disables the bound: the
        // exact distance may then be NaN, which compares unlike any finite
        // bound under `total_cmp`.
        if !cd.is_finite()
            || !cw.is_finite()
            || cd < 0.0
            || cw < 0.0
            || a.nonfinite != 0
            || b.nonfinite != 0
        {
            return f64::NEG_INFINITY;
        }

        // Nodes: the XOR-parity popcount and the count gap each
        // lower-bound the disjoint node count; matched attribute
        // distances are >= 0, so dropping them keeps a lower bound.
        let dn =
            ((a.node_sketch ^ b.node_sketch).count_ones()).max(a.node_count.abs_diff(b.node_count));
        let max_nodes = a.node_count.max(b.node_count).max(1);
        let node_lb = cd * f64::from(dn) / f64::from(max_nodes);

        let dc =
            ((a.conn_sketch ^ b.conn_sketch).count_ones()).max(a.conn_count.abs_diff(b.conn_count));
        let max_conns = a.conn_count.max(b.conn_count).max(1);
        let conn_lb = if dc > 0 {
            cd * f64::from(dc) / f64::from(max_conns)
        } else {
            // The key sets are indistinguishable. Either they really are
            // equal — then every conn is matched and the matched-weight
            // distance is at least the gap between the quantized weight
            // sums (minus one quantization unit per term) — or a sketch
            // collision hides a symmetric difference, which (equal
            // counts) has at least two elements, costing `2·cd`. The min
            // of the two covers both cases.
            let slack = i64::from(a.conn_count).wrapping_add(i64::from(b.conn_count));
            let gap = a
                .weight_qsum
                .wrapping_sub(b.weight_qsum)
                .unsigned_abs()
                .max(a.weight_qabs.wrapping_sub(b.weight_qabs).unsigned_abs());
            let units = gap.saturating_sub(slack.unsigned_abs());
            let weight_lb = cw * (units as f64 / SIG_WEIGHT_SCALE);
            weight_lb.min(2.0 * cd) / f64::from(max_conns)
        };

        // A hair of slack absorbs any rounding difference between this
        // arithmetic and the exact merge-join accumulation.
        (node_lb + conn_lb) * (1.0 - 1e-9)
    }
}

/// One individual: a collection of node and connection genes plus the
/// fitness it earned in the environment.
#[derive(Debug, PartialEq)]
pub struct Genome {
    key: u64,
    /// Node genes in ascending id order (the genome-buffer node cluster).
    nodes: Vec<NodeGene>,
    /// Connection genes in ascending key order (the conn cluster).
    conns: Vec<ConnGene>,
    num_inputs: usize,
    num_outputs: usize,
    fitness: Option<f64>,
    /// Incrementally maintained [`GenomeSignature`]. Participating in the
    /// derived `PartialEq` is intentional: every bit-identity test in the
    /// suite then doubles as a signature-exactness test.
    signature: GenomeSignature,
}

impl Clone for Genome {
    fn clone(&self) -> Genome {
        Genome {
            key: self.key,
            nodes: self.nodes.clone(),
            conns: self.conns.clone(),
            num_inputs: self.num_inputs,
            num_outputs: self.num_outputs,
            fitness: self.fitness,
            signature: self.signature,
        }
    }

    /// Copies `source` into `self` **reusing the existing gene buffers**
    /// (no allocation once capacity has grown to the source size) — the
    /// per-child fast path of the reproduction arena.
    fn clone_from(&mut self, source: &Genome) {
        self.key = source.key;
        self.nodes.clone_from(&source.nodes);
        self.conns.clone_from(&source.conns);
        self.num_inputs = source.num_inputs;
        self.num_outputs = source.num_outputs;
        self.fitness = source.fitness;
        self.signature = source.signature;
    }
}

impl Genome {
    /// Creates the paper's initial topology: every input connected to every
    /// output, no hidden nodes, connection weights per
    /// [`NeatConfig::initial_weights`] (the paper uses zero).
    pub fn initial(key: u64, config: &NeatConfig, rng: &mut XorWow) -> Self {
        let mut nodes = Vec::with_capacity(config.num_inputs + config.num_outputs);
        for i in 0..config.num_inputs {
            nodes.push(NodeGene::input(NodeId(i as u32)));
        }
        for o in 0..config.num_outputs {
            nodes.push(NodeGene::output(NodeId(
                config.first_output_id() + o as u32,
            )));
        }
        let mut conns = Vec::with_capacity(config.num_inputs * config.num_outputs);
        for i in 0..config.num_inputs {
            for o in 0..config.num_outputs {
                let src = NodeId(i as u32);
                let dst = NodeId(config.first_output_id() + o as u32);
                let weight = match config.initial_weights {
                    InitialWeights::Zero => 0.0,
                    InitialWeights::Uniform { lo, hi } => rng.uniform(lo, hi),
                    InitialWeights::Gaussian { stdev } => rng.next_gaussian() * stdev,
                };
                conns.push(ConnGene::new(src, dst, weight));
            }
        }
        let signature = GenomeSignature::of(&nodes, &conns);
        Genome {
            key,
            nodes,
            conns,
            num_inputs: config.num_inputs,
            num_outputs: config.num_outputs,
            fitness: None,
            signature,
        }
    }

    /// An empty genome shell used as an arena slot: every field is
    /// overwritten by [`Genome::clone_from`] or [`Genome::crossover_into`]
    /// before the genome is observed.
    pub(crate) fn shell() -> Genome {
        Genome {
            key: 0,
            nodes: Vec::new(),
            conns: Vec::new(),
            num_inputs: 0,
            num_outputs: 0,
            fitness: None,
            signature: GenomeSignature::default(),
        }
    }

    /// Assembles a genome from raw parts, validating the structural
    /// invariants (used by the hardware Gene Merge block when a child
    /// genome is written back to the genome buffer). A gene repeated with
    /// the same key replaces the earlier occurrence.
    ///
    /// # Errors
    ///
    /// Returns a [`GenomeError`] if a connection dangles, terminates at an
    /// input, the graph is cyclic, or an interface node is missing.
    pub fn from_parts(
        key: u64,
        num_inputs: usize,
        num_outputs: usize,
        nodes: impl IntoIterator<Item = NodeGene>,
        conns: impl IntoIterator<Item = ConnGene>,
    ) -> Result<Self, GenomeError> {
        let mut genome = Genome {
            key,
            nodes: Vec::new(),
            conns: Vec::new(),
            num_inputs,
            num_outputs,
            fitness: None,
            signature: GenomeSignature::default(),
        };
        for n in nodes {
            genome.insert_node(n);
        }
        for c in conns {
            genome.insert_conn(c);
        }
        genome.validate()?;
        Ok(genome)
    }

    /// Checks every structural invariant.
    ///
    /// # Errors
    ///
    /// See [`Genome::from_parts`].
    pub fn validate(&self) -> Result<(), GenomeError> {
        for i in 0..(self.num_inputs + self.num_outputs) as u32 {
            if self.node(NodeId(i)).is_none() {
                return Err(GenomeError::MissingInterfaceNode { id: i });
            }
        }
        for conn in &self.conns {
            if self.node(conn.key.src).is_none() || self.node(conn.key.dst).is_none() {
                return Err(GenomeError::DanglingConnection {
                    src: conn.key.src.0,
                    dst: conn.key.dst.0,
                });
            }
            if self.node_type(conn.key.dst) == Some(NodeType::Input) {
                return Err(GenomeError::ConnectionIntoInput {
                    dst: conn.key.dst.0,
                });
            }
        }
        if self.has_cycle() {
            return Err(GenomeError::Cycle);
        }
        Ok(())
    }

    // ------------------------------------------------------- sorted storage

    /// Binary-searches the node cluster for `id`.
    fn node_pos(&self, id: NodeId) -> Result<usize, usize> {
        self.nodes.binary_search_by(|n| n.id.cmp(&id))
    }

    /// Binary-searches the connection cluster for `key`.
    fn conn_pos(&self, key: ConnKey) -> Result<usize, usize> {
        self.conns.binary_search_by(|c| c.key.cmp(&key))
    }

    /// Inserts (or replaces) a node gene, keeping the cluster sorted.
    fn insert_node(&mut self, gene: NodeGene) {
        match self.node_pos(gene.id) {
            Ok(i) => {
                self.signature.remove_node(&self.nodes[i]);
                self.signature.add_node(&gene);
                self.nodes[i] = gene;
            }
            Err(i) => {
                self.signature.add_node(&gene);
                self.nodes.insert(i, gene);
            }
        }
    }

    /// Inserts (or replaces) a connection gene, keeping the cluster sorted.
    fn insert_conn(&mut self, gene: ConnGene) {
        match self.conn_pos(gene.key) {
            Ok(i) => {
                self.signature.remove_conn(&self.conns[i]);
                self.signature.add_conn(&gene);
                self.conns[i] = gene;
            }
            Err(i) => {
                self.signature.add_conn(&gene);
                self.conns.insert(i, gene);
            }
        }
    }

    /// Rewrites provisional node ids (handed out by a
    /// [`crate::innovation::SplitRecorder`] during a parallel child build)
    /// to the real ids the serial innovation-assignment pass resolved, then
    /// restores the sorted gene order. `map` holds `(provisional, real)`
    /// pairs; ids absent from the map are left untouched.
    pub fn remap_new_nodes(&mut self, map: &[(NodeId, NodeId)]) {
        let lookup = |id: NodeId| {
            map.iter()
                .find(|&&(provisional, _)| provisional == id)
                .map(|&(_, real)| real)
        };
        let sig = &mut self.signature;
        let mut nodes_touched = false;
        for n in &mut self.nodes {
            if let Some(real) = lookup(n.id) {
                sig.remap_node(n.id, real);
                n.id = real;
                nodes_touched = true;
            }
        }
        if nodes_touched {
            self.nodes.sort_by_key(|n| n.id);
        }
        let mut conns_touched = false;
        for c in &mut self.conns {
            let src = lookup(c.key.src);
            let dst = lookup(c.key.dst);
            if src.is_some() || dst.is_some() {
                let new = ConnKey::new(src.unwrap_or(c.key.src), dst.unwrap_or(c.key.dst));
                sig.remap_conn(c.key, new);
                c.key = new;
                conns_touched = true;
            }
        }
        if conns_touched {
            self.conns.sort_by_key(|c| c.key);
        }
        debug_assert!(self.nodes.windows(2).all(|w| w[0].id < w[1].id));
        debug_assert!(self.conns.windows(2).all(|w| w[0].key < w[1].key));
    }

    // ---------------------------------------------------------------- access

    /// Population-unique identifier of this genome.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Re-keys the genome (used when cloning elites into a new generation).
    pub fn set_key(&mut self, key: u64) {
        self.key = key;
    }

    /// Fitness earned in the environment, if evaluated.
    pub fn fitness(&self) -> Option<f64> {
        self.fitness
    }

    /// Records the fitness obtained from the environment.
    pub fn set_fitness(&mut self, fitness: f64) {
        self.fitness = Some(fitness);
    }

    /// Number of input nodes.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of output nodes.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Iterates node genes in ascending id order (the genome-buffer order).
    pub fn nodes(&self) -> impl Iterator<Item = &NodeGene> {
        self.nodes.iter()
    }

    /// Iterates connection genes in ascending key order.
    pub fn conns(&self) -> impl Iterator<Item = &ConnGene> {
        self.conns.iter()
    }

    /// Node genes as one contiguous slice (ascending id order) — the view
    /// the flat population arena packs from.
    pub fn node_genes(&self) -> &[NodeGene] {
        &self.nodes
    }

    /// Connection genes as one contiguous slice (ascending key order).
    pub fn conn_genes(&self) -> &[ConnGene] {
        &self.conns
    }

    /// Looks up a node gene.
    pub fn node(&self, id: NodeId) -> Option<&NodeGene> {
        self.node_pos(id).ok().map(|i| &self.nodes[i])
    }

    /// Looks up a connection gene.
    pub fn conn(&self, key: ConnKey) -> Option<&ConnGene> {
        self.conn_pos(key).ok().map(|i| &self.conns[i])
    }

    /// Structural role of a node, if present.
    pub fn node_type(&self, id: NodeId) -> Option<NodeType> {
        self.node(id).map(|n| n.node_type)
    }

    /// Number of node genes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of connection genes.
    pub fn num_conns(&self) -> usize {
        self.conns.len()
    }

    /// Total gene count (the Fig 4(b) metric).
    pub fn num_genes(&self) -> usize {
        self.nodes.len() + self.conns.len()
    }

    /// Memory footprint in the 64-bit hardware encoding (Fig 5(b) metric).
    pub fn memory_bytes(&self) -> usize {
        self.num_genes() * GENE_BYTES
    }

    /// Ids of hidden nodes.
    pub fn hidden_node_ids(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.node_type == NodeType::Hidden)
            .map(|n| n.id)
            .collect()
    }

    /// Largest node id present (used by the PE's node-id registers).
    pub fn max_node_id(&self) -> u32 {
        self.nodes.last().map_or(0, |n| n.id.0)
    }

    // ------------------------------------------------------------- mutation

    /// Applies the full NEAT mutation suite to this genome: attribute
    /// perturbations and the structural add/delete operators of Fig 3(d).
    /// Operation tallies are recorded into `ops`.
    ///
    /// `innovations` is any [`InnovationSource`]: the global
    /// [`crate::InnovationTracker`] on the serial path, or a per-child
    /// [`crate::innovation::SplitRecorder`] when children are built in
    /// parallel and split ids are resolved by a later serial pass.
    pub fn mutate(
        &mut self,
        config: &NeatConfig,
        innovations: &mut impl InnovationSource,
        rng: &mut XorWow,
        ops: &mut OpCounters,
    ) {
        if rng.chance(config.node_add_prob) {
            self.mutate_add_node(innovations, rng, ops);
        }
        if rng.chance(config.node_delete_prob) {
            self.mutate_delete_node(config, rng, ops);
        }
        if rng.chance(config.conn_add_prob) {
            self.mutate_add_conn(rng, ops);
        }
        if rng.chance(config.conn_delete_prob) {
            self.mutate_delete_conn(rng, ops);
        }
        self.mutate_attributes(config, rng, ops);
    }

    /// Perturbs (or replaces) the continuous and discrete attributes of all
    /// genes — the Perturbation Engine's work.
    ///
    /// Hit selection uses **geometric-skip sampling**: instead of one
    /// Bernoulli draw per gene per attribute, the geometric CDF is inverted
    /// once per hit and the walk jumps straight to the next mutated gene,
    /// making the pass O(mutations) instead of O(genes) — the behaviour
    /// megapopulations need. Each attribute is swept as its own channel
    /// (bias, response, activation, aggregation over the non-input node
    /// cluster; weight, enabled over the conn cluster), in that order. The
    /// per-hit payload draws (replace-vs-perturb, uniform or Gaussian) are
    /// unchanged. The marginal per-gene mutation probability is identical
    /// to the per-gene coin flip this replaces, but the PRNG stream shape
    /// differs; see `crate::reproduction` for the documented trade.
    pub fn mutate_attributes(
        &mut self,
        config: &NeatConfig,
        rng: &mut XorWow,
        ops: &mut OpCounters,
    ) {
        // Sorted-by-id node cluster ⇒ inputs occupy positions
        // 0..num_inputs, so the non-input genes are exactly the tail.
        let first = self.num_inputs.min(self.nodes.len());
        let sig = &mut self.signature;
        let targets = &mut self.nodes[first..];
        geometric_hits(rng, config.bias_mutate_rate, targets.len(), |rng, i| {
            let node = &mut targets[i];
            let old = node.bias;
            node.bias = if rng.chance(config.bias_replace_rate) {
                rng.uniform(config.bias_min, config.bias_max)
            } else {
                (node.bias + rng.next_gaussian() * config.bias_perturb_power)
                    .clamp(config.bias_min, config.bias_max)
            };
            sig.replace_node_attr(old, node.bias);
            ops.perturb += 1;
        });
        geometric_hits(rng, config.response_mutate_rate, targets.len(), |rng, i| {
            let node = &mut targets[i];
            let old = node.response;
            node.response = if rng.chance(config.response_replace_rate) {
                rng.uniform(config.response_min, config.response_max)
            } else {
                (node.response + rng.next_gaussian() * config.response_perturb_power)
                    .clamp(config.response_min, config.response_max)
            };
            sig.replace_node_attr(old, node.response);
            ops.perturb += 1;
        });
        geometric_hits(
            rng,
            config.activation_mutate_rate,
            targets.len(),
            |rng, i| {
                targets[i].activation = Activation::random(rng, &config.activation_options);
                ops.perturb += 1;
            },
        );
        geometric_hits(
            rng,
            config.aggregation_mutate_rate,
            targets.len(),
            |rng, i| {
                targets[i].aggregation = Aggregation::random(rng, &config.aggregation_options);
                ops.perturb += 1;
            },
        );
        let conns = &mut self.conns;
        geometric_hits(rng, config.weight_mutate_rate, conns.len(), |rng, i| {
            let conn = &mut conns[i];
            sig.remove_conn_weight(conn.weight);
            conn.weight = if rng.chance(config.weight_replace_rate) {
                rng.uniform(config.weight_min, config.weight_max)
            } else {
                (conn.weight + rng.next_gaussian() * config.weight_perturb_power)
                    .clamp(config.weight_min, config.weight_max)
            };
            sig.add_conn_weight(conn.weight);
            ops.perturb += 1;
        });
        geometric_hits(rng, config.enabled_mutate_rate, conns.len(), |_rng, i| {
            conns[i].enabled = !conns[i].enabled;
            ops.perturb += 1;
        });
    }

    /// Splits a random enabled connection `s->d` into `s->new` and
    /// `new->d`, disabling the original — the classic NEAT add-node.
    pub fn mutate_add_node(
        &mut self,
        innovations: &mut impl InnovationSource,
        rng: &mut XorWow,
        ops: &mut OpCounters,
    ) {
        let enabled = self.conns.iter().filter(|c| c.enabled).count();
        if enabled == 0 {
            return;
        }
        let pick = rng.below(enabled);
        let key = self
            .conns
            .iter()
            .filter(|c| c.enabled)
            .nth(pick)
            .expect("pick is below the enabled count")
            .key;
        let new_id = innovations.node_for_split(key);
        if self.node(new_id).is_some() {
            // The same split already occurred in this genome (possible when
            // crossover merged a parent that had it); skip.
            return;
        }
        let pos = self.conn_pos(key).expect("key from iteration");
        let old_weight = self.conns[pos].weight;
        self.conns[pos].enabled = false;
        self.insert_node(NodeGene::hidden(new_id));
        // Per the paper's Add-Gene engine: "two new connection genes are
        // generated". Input-side weight 1 preserves the signal; output-side
        // inherits the old weight.
        self.insert_conn(ConnGene::new(key.src, new_id, 1.0));
        self.insert_conn(ConnGene::new(new_id, key.dst, old_weight));
        ops.add_node += 1;
        ops.add_conn += 2;
    }

    /// Adds a new connection between two previously unconnected nodes,
    /// keeping the graph acyclic (inference must remain "processing an
    /// acyclic directed graph").
    pub fn mutate_add_conn(&mut self, rng: &mut XorWow, ops: &mut OpCounters) {
        let num_sources = self.nodes.len();
        let num_sinks = self
            .nodes
            .iter()
            .filter(|n| n.node_type != NodeType::Input)
            .count();
        if num_sources == 0 || num_sinks == 0 {
            return;
        }
        // Bounded retry: candidate pairs may be duplicates or create cycles.
        for _ in 0..16 {
            let src = self.nodes[rng.below(num_sources)].id;
            let sink_pick = rng.below(num_sinks);
            // Sorted node cluster: inputs fill positions 0..num_inputs
            // (validate guarantees ids 0..num_inputs+num_outputs are all
            // present), so the `sink_pick`-th non-input gene sits at a
            // fixed offset — O(1), same draw, same selection as the
            // filter/nth scan this replaces.
            let dst = self.nodes[self.num_inputs + sink_pick].id;
            debug_assert_ne!(
                self.nodes[self.num_inputs + sink_pick].node_type,
                NodeType::Input
            );
            if src == dst {
                continue;
            }
            let key = ConnKey::new(src, dst);
            match self.conn_pos(key) {
                Ok(i) => {
                    if !self.conns[i].enabled {
                        self.conns[i].enabled = true;
                        ops.perturb += 1;
                        return;
                    }
                }
                Err(i) => {
                    if self.would_create_cycle(src, dst) {
                        continue;
                    }
                    let weight = rng.uniform(-1.0, 1.0);
                    let gene = ConnGene::new(src, dst, weight);
                    self.signature.add_conn(&gene);
                    self.conns.insert(i, gene);
                    ops.add_conn += 1;
                    return;
                }
            }
        }
    }

    /// Deletes a random hidden node and every connection touching it,
    /// respecting the per-generation deletion ceiling
    /// ([`NeatConfig::node_delete_limit`]) the hardware enforces to "keep
    /// the genome alive".
    pub fn mutate_delete_node(
        &mut self,
        config: &NeatConfig,
        rng: &mut XorWow,
        ops: &mut OpCounters,
    ) {
        if ops.delete_node as usize >= config.node_delete_limit {
            return;
        }
        // Sorted node cluster with the full interface present ⇒ hidden
        // genes are exactly the tail past the inputs and outputs.
        let interface = self.num_inputs + self.num_outputs;
        let hidden = self.nodes.len().saturating_sub(interface);
        if hidden == 0 {
            return;
        }
        let pick = rng.below(hidden);
        let pos = interface + pick;
        let victim = self.nodes[pos].id;
        debug_assert_eq!(self.nodes[pos].node_type, NodeType::Hidden);
        self.signature.remove_node(&self.nodes[pos]);
        self.nodes.remove(pos);
        // Pruning "dangling connections" is exactly what the hardware does
        // by comparing stored deleted-node IDs against the conn stream.
        let before = self.conns.len();
        let sig = &mut self.signature;
        self.conns.retain(|c| {
            let keep = c.key.src != victim && c.key.dst != victim;
            if !keep {
                sig.remove_conn(c);
            }
            keep
        });
        ops.delete_node += 1;
        ops.delete_conn += (before - self.conns.len()) as u64;
    }

    /// Deletes a random connection gene.
    pub fn mutate_delete_conn(&mut self, rng: &mut XorWow, ops: &mut OpCounters) {
        if self.conns.is_empty() {
            return;
        }
        let pick = rng.below(self.conns.len());
        self.signature.remove_conn(&self.conns[pick]);
        self.conns.remove(pick);
        ops.delete_conn += 1;
    }

    /// Would inserting `src -> dst` create a cycle? (Is `src` reachable
    /// from `dst` through existing connections?)
    pub fn would_create_cycle(&self, src: NodeId, dst: NodeId) -> bool {
        if src == dst {
            return true;
        }
        let mut adjacency: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for conn in &self.conns {
            adjacency
                .entry(conn.key.src)
                .or_default()
                .push(conn.key.dst);
        }
        let mut stack = vec![dst];
        let mut seen = HashSet::new();
        while let Some(n) = stack.pop() {
            if n == src {
                return true;
            }
            if seen.insert(n) {
                if let Some(next) = adjacency.get(&n) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    }

    fn has_cycle(&self) -> bool {
        // Kahn's algorithm over slot indices: if topological elimination
        // leaves nodes with in-degree > 0, a cycle exists.
        let idx_of: HashMap<NodeId, usize> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.id, i))
            .collect();
        let mut indegree = vec![0usize; self.nodes.len()];
        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for conn in &self.conns {
            // Dangling endpoints are caught by `validate` before the cycle
            // check; skip them here so the walk stays in bounds.
            let (Some(&s), Some(&d)) = (idx_of.get(&conn.key.src), idx_of.get(&conn.key.dst))
            else {
                continue;
            };
            indegree[d] += 1;
            adjacency[s].push(d);
        }
        let mut queue: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| indegree[i] == 0)
            .collect();
        let mut visited = 0usize;
        while let Some(n) = queue.pop() {
            visited += 1;
            for &m in &adjacency[n] {
                indegree[m] -= 1;
                if indegree[m] == 0 {
                    queue.push(m);
                }
            }
        }
        visited != self.nodes.len()
    }

    // ------------------------------------------------------------ crossover

    /// Produces a child by crossing two parents, `parent1` being the fitter
    /// one. Matching genes take each *attribute* independently from either
    /// parent with probability `bias` of favouring `parent1` (the
    /// programmable bias of the hardware Crossover Engine; default 0.5);
    /// disjoint and excess genes come from the fitter parent, as in classic
    /// NEAT. Crossover op counts are recorded into `ops`.
    pub fn crossover(
        key: u64,
        parent1: &Genome,
        parent2: &Genome,
        bias: f64,
        rng: &mut XorWow,
        ops: &mut OpCounters,
    ) -> Genome {
        let mut child = Genome::shell();
        Genome::crossover_into(&mut child, key, parent1, parent2, bias, rng, ops);
        child
    }

    /// [`Genome::crossover`] writing the child into an existing genome's
    /// buffers (cleared, capacity retained) — the arena fast path. The two
    /// sorted parent gene streams are merge-joined exactly as the hardware
    /// Gene Split block aligns them, so the per-gene PRNG draw order is
    /// identical to the map-based implementation this replaced.
    pub fn crossover_into(
        child: &mut Genome,
        key: u64,
        parent1: &Genome,
        parent2: &Genome,
        bias: f64,
        rng: &mut XorWow,
        ops: &mut OpCounters,
    ) {
        debug_assert_eq!(parent1.num_inputs, parent2.num_inputs);
        debug_assert_eq!(parent1.num_outputs, parent2.num_outputs);
        child.key = key;
        child.num_inputs = parent1.num_inputs;
        child.num_outputs = parent1.num_outputs;
        child.fitness = None;
        child.nodes.clear();
        child.conns.clear();
        child.nodes.reserve(parent1.nodes.len());
        child.conns.reserve(parent1.conns.len());

        let mut j = 0usize;
        for n1 in &parent1.nodes {
            while j < parent2.nodes.len() && parent2.nodes[j].id < n1.id {
                j += 1;
            }
            let gene = if j < parent2.nodes.len() && parent2.nodes[j].id == n1.id {
                // Per-attribute cherry-pick, one PRNG draw per attribute
                // (the four comparators of the Crossover Engine).
                let n2 = &parent2.nodes[j];
                let mut c = *n1;
                if !rng.chance(bias) {
                    c.bias = n2.bias;
                }
                if !rng.chance(bias) {
                    c.response = n2.response;
                }
                if !rng.chance(bias) {
                    c.activation = n2.activation;
                }
                if !rng.chance(bias) {
                    c.aggregation = n2.aggregation;
                }
                c
            } else {
                *n1 // disjoint/excess: fitter parent wins
            };
            child.nodes.push(gene);
            ops.crossover += 1;
        }

        let mut j = 0usize;
        for c1 in &parent1.conns {
            while j < parent2.conns.len() && parent2.conns[j].key < c1.key {
                j += 1;
            }
            let gene = if j < parent2.conns.len() && parent2.conns[j].key == c1.key {
                let c2 = &parent2.conns[j];
                let mut c = *c1;
                if !rng.chance(bias) {
                    c.weight = c2.weight;
                }
                if !rng.chance(bias) {
                    c.enabled = c2.enabled;
                }
                c
            } else {
                *c1
            };
            // A gene inherited from parent2's attribute mix always has
            // parent1's key, and parent1 contains both endpoints.
            child.conns.push(gene);
            ops.crossover += 1;
        }

        // A child mixes genes from both parents, so the cheapest correct
        // signature is a from-scratch fold over the fresh gene buffers
        // (one O(genes) pass on top of the merge-join just performed).
        child.signature = GenomeSignature::of(&child.nodes, &child.conns);
    }

    // ------------------------------------------------------------- distance

    /// Compatibility distance used for speciation (Section II-D), following
    /// the `neat-python` formulation: node distance plus connection
    /// distance, each `(weight_coeff * Σ attribute distance of matching
    /// genes + disjoint_coeff * #non-matching) / max gene count`.
    ///
    /// Implemented as a merge-join over the two sorted gene streams
    /// ([`crate::arena::gene_distance`], shared with the flat population
    /// arena's [`crate::arena::GenomeView`]); the accumulation order
    /// (ascending key order of `other`) is identical to the map-based
    /// implementation, so distances are bit-identical.
    pub fn distance(&self, other: &Genome, config: &NeatConfig) -> f64 {
        crate::arena::gene_distance(&self.nodes, &self.conns, &other.nodes, &other.conns, config)
    }

    /// The incrementally maintained O(1) summary of this genome's gene set.
    pub fn signature(&self) -> &GenomeSignature {
        &self.signature
    }

    /// From-scratch signature of the current gene buffers — the oracle the
    /// incremental maintenance is tested against. O(genes).
    pub fn recompute_signature(&self) -> GenomeSignature {
        GenomeSignature::of(&self.nodes, &self.conns)
    }

    /// O(1) lower bound on [`Genome::distance`]: for every pair of genomes
    /// and every config, `a.distance_lower_bound(b, c) <=
    /// a.distance(b, c)` (and is `-inf` — never pruning — whenever the
    /// exact distance could be NaN). See [`GenomeSignature`] for the
    /// construction and `docs/speciation.md` for the proof sketch.
    pub fn distance_lower_bound(&self, other: &Genome, config: &NeatConfig) -> f64 {
        GenomeSignature::lower_bound(&self.signature, &other.signature, config)
    }
}

/// Visits the geometric-skip hit positions of a Bernoulli(`rate`) process
/// over `len` items in strictly increasing order: one uniform draw inverts
/// the geometric CDF (`skip = ⌊ln(1-u)/ln(1-rate)⌋`) and the walk jumps
/// straight to the next hit, so the cost is O(hits) rather than O(len).
/// `rate <= 0` consumes no draws; `rate >= 1` visits every item without
/// drawing (the coin flip would succeed surely anyway).
///
/// Each visited index has marginal probability exactly `rate` of being
/// hit, matching a per-item coin flip in distribution; the PRNG words
/// consumed differ from the coin-flip stream by construction.
fn geometric_hits(
    rng: &mut XorWow,
    rate: f64,
    len: usize,
    mut visit: impl FnMut(&mut XorWow, usize),
) {
    if len == 0 || rate <= 0.0 {
        return;
    }
    if rate >= 1.0 {
        for i in 0..len {
            visit(rng, i);
        }
        return;
    }
    // ln(1-rate) < 0; ln(1-u) ≤ 0 for u ∈ [0,1) ⇒ skip ≥ 0. The f64→usize
    // cast saturates, so a tiny (1-u) cannot overflow — it just ends the
    // walk past `len`.
    let denom = (1.0 - rate).ln();
    let mut i = 0usize;
    while i < len {
        let u = rng.next_f64();
        let skip = ((1.0 - u).ln() / denom) as usize;
        i = i.saturating_add(skip);
        if i >= len {
            return;
        }
        visit(rng, i);
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::innovation::InnovationTracker;

    fn cfg() -> NeatConfig {
        NeatConfig::builder(3, 2).build().unwrap()
    }

    fn rng() -> XorWow {
        XorWow::seed_from_u64_value(12345)
    }

    #[test]
    fn initial_genome_is_fully_connected_with_zero_weights() {
        let c = cfg();
        let g = Genome::initial(0, &c, &mut rng());
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_conns(), 6);
        assert!(g.conns().all(|conn| conn.weight == 0.0 && conn.enabled));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn initial_genome_uniform_weights_in_range() {
        let mut c = cfg();
        c.initial_weights = InitialWeights::Uniform { lo: -2.0, hi: 2.0 };
        let g = Genome::initial(0, &c, &mut rng());
        assert!(g.conns().all(|conn| (-2.0..2.0).contains(&conn.weight)));
    }

    #[test]
    fn memory_footprint_is_eight_bytes_per_gene() {
        let g = Genome::initial(0, &cfg(), &mut rng());
        assert_eq!(g.memory_bytes(), g.num_genes() * 8);
    }

    #[test]
    fn genes_iterate_in_ascending_key_order() {
        let c = cfg();
        let mut r = rng();
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut g = Genome::initial(0, &c, &mut r);
        let mut ops = OpCounters::new();
        for _ in 0..30 {
            g.mutate(&c, &mut innov, &mut r, &mut ops);
        }
        let ids: Vec<NodeId> = g.nodes().map(|n| n.id).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "node cluster sorted");
        let keys: Vec<ConnKey> = g.conns().map(|c| c.key).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "conn cluster sorted");
    }

    #[test]
    fn clone_from_reuses_buffers_and_matches_clone() {
        let c = cfg();
        let mut r = rng();
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut g = Genome::initial(7, &c, &mut r);
        let mut ops = OpCounters::new();
        g.mutate_add_node(&mut innov, &mut r, &mut ops);
        g.set_fitness(4.5);
        let mut target = Genome::shell();
        target.clone_from(&g);
        assert_eq!(target, g);
        assert_eq!(target.fitness(), Some(4.5));
    }

    #[test]
    fn add_node_splits_a_connection() {
        let c = cfg();
        let mut g = Genome::initial(0, &c, &mut rng());
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut ops = OpCounters::new();
        let before_conns = g.num_conns();
        g.mutate_add_node(&mut innov, &mut rng(), &mut ops);
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_conns(), before_conns + 2);
        assert_eq!(ops.add_node, 1);
        assert_eq!(ops.add_conn, 2);
        assert_eq!(g.conns().filter(|c| !c.enabled).count(), 1);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn add_conn_keeps_graph_acyclic() {
        let c = cfg();
        let mut g = Genome::initial(0, &c, &mut rng());
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut ops = OpCounters::new();
        let mut r = rng();
        for _ in 0..50 {
            g.mutate_add_node(&mut innov, &mut r, &mut ops);
            g.mutate_add_conn(&mut r, &mut ops);
            assert!(g.validate().is_ok());
        }
    }

    #[test]
    fn delete_node_prunes_dangling_connections() {
        let c = cfg();
        let mut g = Genome::initial(0, &c, &mut rng());
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut ops = OpCounters::new();
        let mut r = rng();
        g.mutate_add_node(&mut innov, &mut r, &mut ops);
        assert_eq!(g.hidden_node_ids().len(), 1);
        g.mutate_delete_node(&c, &mut r, &mut ops);
        assert_eq!(g.hidden_node_ids().len(), 0);
        assert!(g.validate().is_ok(), "no dangling connections may remain");
        assert_eq!(ops.delete_node, 1);
        assert!(ops.delete_conn >= 2);
    }

    #[test]
    fn delete_node_respects_limit() {
        let mut c = cfg();
        c.node_delete_limit = 0;
        let mut g = Genome::initial(0, &c, &mut rng());
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut ops = OpCounters::new();
        let mut r = rng();
        g.mutate_add_node(&mut innov, &mut r, &mut ops);
        let nodes_before = g.num_nodes();
        ops = OpCounters::new();
        g.mutate_delete_node(&c, &mut r, &mut ops);
        assert_eq!(g.num_nodes(), nodes_before, "limit 0 forbids deletion");
    }

    #[test]
    fn delete_conn_removes_one() {
        let mut g = Genome::initial(0, &cfg(), &mut rng());
        let before = g.num_conns();
        let mut ops = OpCounters::new();
        g.mutate_delete_conn(&mut rng(), &mut ops);
        assert_eq!(g.num_conns(), before - 1);
        assert_eq!(ops.delete_conn, 1);
    }

    #[test]
    fn crossover_of_identical_parents_is_identity_structure() {
        let c = cfg();
        let p = Genome::initial(7, &c, &mut rng());
        let mut ops = OpCounters::new();
        let child = Genome::crossover(8, &p, &p, 0.5, &mut rng(), &mut ops);
        assert_eq!(child.num_nodes(), p.num_nodes());
        assert_eq!(child.num_conns(), p.num_conns());
        assert_eq!(ops.crossover as usize, p.num_genes());
        assert!(child.validate().is_ok());
    }

    #[test]
    fn crossover_takes_disjoint_from_fitter_parent() {
        let c = cfg();
        let mut r = rng();
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut ops = OpCounters::new();
        let base = Genome::initial(0, &c, &mut r);
        let mut fit = base.clone();
        fit.mutate_add_node(&mut innov, &mut r, &mut ops);
        // fit has extra structure; base does not.
        let child = Genome::crossover(1, &fit, &base, 0.5, &mut r, &mut ops);
        assert_eq!(child.num_nodes(), fit.num_nodes());
        assert_eq!(child.num_conns(), fit.num_conns());
        let child2 = Genome::crossover(2, &base, &fit, 0.5, &mut r, &mut ops);
        assert_eq!(child2.num_nodes(), base.num_nodes());
    }

    #[test]
    fn crossover_bias_one_copies_parent1_attributes() {
        let c = cfg();
        let mut r = rng();
        let mut p1 = Genome::initial(0, &c, &mut r);
        let mut p2 = Genome::initial(1, &c, &mut r);
        let mut ops = OpCounters::new();
        p1.mutate_attributes(&c, &mut r, &mut ops);
        p2.mutate_attributes(&c, &mut r, &mut ops);
        let child = Genome::crossover(2, &p1, &p2, 1.0, &mut r, &mut ops);
        for conn in child.conns() {
            assert_eq!(conn.weight, p1.conn(conn.key).unwrap().weight);
        }
    }

    #[test]
    fn crossover_into_reused_buffers_matches_fresh_child() {
        let c = cfg();
        let mut r = rng();
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut ops = OpCounters::new();
        let mut p1 = Genome::initial(0, &c, &mut r);
        let mut p2 = Genome::initial(1, &c, &mut r);
        p1.mutate_add_node(&mut innov, &mut r, &mut ops);
        p2.mutate_attributes(&c, &mut r, &mut ops);
        // Same draws, one into a dirty reused buffer, one fresh.
        let mut ra = XorWow::seed_from_u64_value(9);
        let mut rb = XorWow::seed_from_u64_value(9);
        let fresh = Genome::crossover(5, &p1, &p2, 0.5, &mut ra, &mut ops);
        let mut reused = Genome::initial(99, &c, &mut r); // dirty buffers
        Genome::crossover_into(&mut reused, 5, &p1, &p2, 0.5, &mut rb, &mut ops);
        assert_eq!(fresh, reused);
    }

    #[test]
    fn remap_new_nodes_restores_sorted_order() {
        use crate::innovation::{SplitRecorder, PROVISIONAL_NODE_BASE};
        let c = cfg();
        let mut r = rng();
        let mut ops = OpCounters::new();
        let mut recorder = SplitRecorder::new();
        let mut g = Genome::initial(0, &c, &mut r);
        g.mutate_add_node(&mut recorder, &mut r, &mut ops);
        g.mutate_add_node(&mut recorder, &mut r, &mut ops);
        assert!(g.max_node_id() >= PROVISIONAL_NODE_BASE);
        // Resolve through a real tracker, as the serial pass would.
        let mut tracker = InnovationTracker::new(c.first_hidden_id());
        let map: Vec<(NodeId, NodeId)> = recorder
            .requests()
            .iter()
            .map(|&(key, provisional)| (provisional, tracker.node_for_split(key)))
            .collect();
        g.remap_new_nodes(&map);
        assert!(g.max_node_id() < PROVISIONAL_NODE_BASE);
        assert!(g.validate().is_ok());
        let ids: Vec<NodeId> = g.nodes().map(|n| n.id).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn distance_zero_for_identical_and_positive_for_diverged() {
        let c = cfg();
        let mut r = rng();
        let g1 = Genome::initial(0, &c, &mut r);
        assert_eq!(g1.distance(&g1.clone(), &c), 0.0);
        let mut g2 = g1.clone();
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut ops = OpCounters::new();
        g2.mutate_add_node(&mut innov, &mut r, &mut ops);
        g2.mutate_attributes(&c, &mut r, &mut ops);
        let d = g1.distance(&g2, &c);
        assert!(d > 0.0);
        assert!(
            (g1.distance(&g2, &c) - g2.distance(&g1, &c)).abs() < 1e-12,
            "symmetric"
        );
    }

    #[test]
    fn from_parts_rejects_dangling_connection() {
        let c = cfg();
        let g = Genome::initial(0, &c, &mut rng());
        let nodes: Vec<NodeGene> = g.nodes().copied().collect();
        let mut conns: Vec<ConnGene> = g.conns().copied().collect();
        conns.push(ConnGene::new(NodeId(0), NodeId(99), 1.0));
        let err = Genome::from_parts(1, 3, 2, nodes, conns).unwrap_err();
        assert!(matches!(
            err,
            GenomeError::DanglingConnection { dst: 99, .. }
        ));
    }

    #[test]
    fn from_parts_rejects_connection_into_input() {
        let c = cfg();
        let g = Genome::initial(0, &c, &mut rng());
        let nodes: Vec<NodeGene> = g.nodes().copied().collect();
        let mut conns: Vec<ConnGene> = g.conns().copied().collect();
        conns.push(ConnGene::new(NodeId(3), NodeId(0), 1.0));
        let err = Genome::from_parts(1, 3, 2, nodes, conns).unwrap_err();
        assert!(matches!(err, GenomeError::ConnectionIntoInput { dst: 0 }));
    }

    #[test]
    fn from_parts_rejects_cycle() {
        let c = cfg();
        let g = Genome::initial(0, &c, &mut rng());
        let mut nodes: Vec<NodeGene> = g.nodes().copied().collect();
        nodes.push(NodeGene::hidden(NodeId(10)));
        nodes.push(NodeGene::hidden(NodeId(11)));
        let mut conns: Vec<ConnGene> = g.conns().copied().collect();
        conns.push(ConnGene::new(NodeId(10), NodeId(11), 1.0));
        conns.push(ConnGene::new(NodeId(11), NodeId(10), 1.0));
        let err = Genome::from_parts(1, 3, 2, nodes, conns).unwrap_err();
        assert_eq!(err, GenomeError::Cycle);
    }

    #[test]
    fn from_parts_rejects_missing_interface() {
        let c = cfg();
        let g = Genome::initial(0, &c, &mut rng());
        let nodes: Vec<NodeGene> = g.nodes().skip(1).copied().collect();
        let err = Genome::from_parts(1, 3, 2, nodes, Vec::new()).unwrap_err();
        assert_eq!(err, GenomeError::MissingInterfaceNode { id: 0 });
    }

    #[test]
    fn from_parts_last_duplicate_wins() {
        let c = cfg();
        let g = Genome::initial(0, &c, &mut rng());
        let nodes: Vec<NodeGene> = g.nodes().copied().collect();
        let mut conns: Vec<ConnGene> = g.conns().copied().collect();
        let mut dup = conns[0];
        dup.weight = 42.0;
        conns.push(dup);
        let rebuilt = Genome::from_parts(1, 3, 2, nodes, conns).unwrap();
        assert_eq!(rebuilt.num_conns(), g.num_conns());
        assert_eq!(rebuilt.conn(dup.key).unwrap().weight, 42.0);
    }

    #[test]
    fn full_mutate_preserves_invariants() {
        let c = cfg();
        let mut r = rng();
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut g = Genome::initial(0, &c, &mut r);
        for gen in 0..100 {
            let mut ops = OpCounters::new();
            innov.begin_generation();
            g.mutate(&c, &mut innov, &mut r, &mut ops);
            assert!(
                g.validate().is_ok(),
                "invariants violated at iteration {gen}"
            );
        }
    }

    #[test]
    fn geometric_skip_visits_are_increasing_and_in_range() {
        for seed in 0..200u64 {
            let mut r = XorWow::seed_from_u64_value(seed);
            let mut visited = Vec::new();
            geometric_hits(&mut r, 0.37, 64, |_, i| visited.push(i));
            assert!(visited.iter().all(|&i| i < 64));
            assert!(
                visited.windows(2).all(|w| w[0] < w[1]),
                "visit order must be strictly increasing: {visited:?}"
            );
        }
    }

    #[test]
    fn geometric_skip_edge_rates_are_exact() {
        // rate 0: nothing visited, no PRNG words consumed.
        let mut r = XorWow::seed_from_u64_value(5);
        let before = r.state();
        geometric_hits(&mut r, 0.0, 100, |_, _| panic!("rate 0 must not visit"));
        assert_eq!(r.state(), before, "rate 0 must not draw");
        // rate 1: every index visited exactly once, no selection draws.
        let mut visited = Vec::new();
        geometric_hits(&mut r, 1.0, 10, |_, i| visited.push(i));
        assert_eq!(visited, (0..10).collect::<Vec<_>>());
        assert_eq!(r.state(), before, "sure hits need no draws");
        // empty range: no draws at any rate.
        geometric_hits(&mut r, 0.5, 0, |_, _| panic!("empty range"));
        assert_eq!(r.state(), before);
    }

    /// Distribution-equivalence oracle for the geometric-skip sampler: the
    /// per-gene hit probability must match a per-gene Bernoulli coin flip.
    /// (The PRNG stream *shape* intentionally differs — one draw per hit
    /// instead of one per gene — which is the documented seed-derivation
    /// trade in `crate::reproduction`.)
    #[test]
    fn geometric_skip_matches_coin_flip_distribution() {
        const LEN: usize = 32;
        const TRIALS: u64 = 6000;
        const RATE: f64 = 0.3;
        let mut skip_hits = [0u64; LEN];
        let mut flip_hits = [0u64; LEN];
        for trial in 0..TRIALS {
            let mut r = XorWow::seed_from_u64_value(0xA5A5_0000 + trial);
            geometric_hits(&mut r, RATE, LEN, |_, i| skip_hits[i] += 1);
            let mut r = XorWow::seed_from_u64_value(0x5A5A_0000 + trial);
            for slot in flip_hits.iter_mut() {
                if r.chance(RATE) {
                    *slot += 1;
                }
            }
        }
        // ~3.5 sigma for Binomial(TRIALS, 0.3) is ±0.021; use ±0.03.
        for i in 0..LEN {
            let skip_p = skip_hits[i] as f64 / TRIALS as f64;
            let flip_p = flip_hits[i] as f64 / TRIALS as f64;
            assert!(
                (skip_p - RATE).abs() < 0.03,
                "index {i}: geometric-skip hit rate {skip_p} vs expected {RATE}"
            );
            assert!(
                (skip_p - flip_p).abs() < 0.045,
                "index {i}: skip {skip_p} vs coin flip {flip_p}"
            );
        }
    }

    /// The O(1) positional candidate selection in `mutate_add_conn` /
    /// `mutate_delete_node` relies on the sorted node cluster layout:
    /// inputs at 0..n_in, outputs next, hidden after. Heavy structural
    /// churn must preserve it.
    #[test]
    fn node_cluster_layout_supports_positional_selection() {
        let c = cfg();
        let mut r = rng();
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut g = Genome::initial(0, &c, &mut r);
        for _ in 0..60 {
            let mut ops = OpCounters::new();
            innov.begin_generation();
            g.mutate(&c, &mut innov, &mut r, &mut ops);
            let nodes = g.node_genes();
            assert!(nodes[..g.num_inputs()]
                .iter()
                .all(|n| n.node_type == NodeType::Input));
            assert!(nodes[g.num_inputs()..]
                .iter()
                .all(|n| n.node_type != NodeType::Input));
            assert!(nodes[g.num_inputs() + g.num_outputs()..]
                .iter()
                .all(|n| n.node_type == NodeType::Hidden));
        }
    }

    #[test]
    fn incremental_signature_matches_from_scratch_after_mutation_storm() {
        let c = cfg();
        let mut r = rng();
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut g = Genome::initial(0, &c, &mut r);
        assert_eq!(*g.signature(), g.recompute_signature());
        for gen in 0..200 {
            let mut ops = OpCounters::new();
            innov.begin_generation();
            g.mutate(&c, &mut innov, &mut r, &mut ops);
            assert_eq!(
                *g.signature(),
                g.recompute_signature(),
                "signature drifted at iteration {gen}"
            );
        }
    }

    #[test]
    fn crossover_and_clone_preserve_signature_exactness() {
        let c = cfg();
        let mut r = rng();
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut ops = OpCounters::new();
        let mut p1 = Genome::initial(0, &c, &mut r);
        let mut p2 = Genome::initial(1, &c, &mut r);
        for _ in 0..4 {
            p1.mutate(&c, &mut innov, &mut r, &mut ops);
            p2.mutate(&c, &mut innov, &mut r, &mut ops);
        }
        let child = Genome::crossover(2, &p1, &p2, 0.5, &mut r, &mut ops);
        assert_eq!(*child.signature(), child.recompute_signature());
        let mut slot = Genome::shell();
        slot.clone_from(&child);
        assert_eq!(*slot.signature(), slot.recompute_signature());
    }

    #[test]
    fn remap_new_nodes_keeps_signature_exact() {
        use crate::innovation::SplitRecorder;
        let c = cfg();
        let mut r = rng();
        let mut ops = OpCounters::new();
        let mut recorder = SplitRecorder::new();
        let mut g = Genome::initial(0, &c, &mut r);
        g.mutate_add_node(&mut recorder, &mut r, &mut ops);
        g.mutate_add_node(&mut recorder, &mut r, &mut ops);
        let mut tracker = InnovationTracker::new(c.first_hidden_id());
        let map: Vec<(NodeId, NodeId)> = recorder
            .requests()
            .iter()
            .map(|&(key, provisional)| (provisional, tracker.node_for_split(key)))
            .collect();
        g.remap_new_nodes(&map);
        assert_eq!(*g.signature(), g.recompute_signature());
    }

    #[test]
    fn signature_lower_bound_never_exceeds_exact_distance() {
        let c = cfg();
        let mut r = rng();
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut ops = OpCounters::new();
        let mut pool: Vec<Genome> = (0..24).map(|k| Genome::initial(k, &c, &mut r)).collect();
        for round in 0..6 {
            for g in &mut pool {
                innov.begin_generation();
                g.mutate(&c, &mut innov, &mut r, &mut ops);
            }
            for a in &pool {
                for b in &pool {
                    let lb = a.distance_lower_bound(b, &c);
                    let d = a.distance(b, &c);
                    assert!(
                        lb <= d,
                        "round {round}: lb {lb} > exact {d} for {} vs {}",
                        a.key(),
                        b.key()
                    );
                }
            }
        }
    }

    #[test]
    fn signature_lower_bound_is_positive_for_structural_divergence() {
        let c = cfg();
        let mut r = rng();
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut ops = OpCounters::new();
        let a = Genome::initial(0, &c, &mut r);
        let mut b = a.clone();
        for _ in 0..5 {
            b.mutate_add_node(&mut innov, &mut r, &mut ops);
        }
        let lb = a.distance_lower_bound(&b, &c);
        assert!(
            lb > 0.0,
            "structural gap must be visible to the bound: {lb}"
        );
        assert!(lb <= a.distance(&b, &c));
    }

    #[test]
    fn signature_lower_bound_disabled_by_nonfinite_attributes() {
        let c = cfg();
        let g = Genome::initial(0, &c, &mut rng());
        let nodes: Vec<NodeGene> = g
            .nodes()
            .map(|n| {
                let mut n = *n;
                if n.id == NodeId(3) {
                    n.bias = f64::INFINITY;
                }
                n
            })
            .collect();
        let conns: Vec<ConnGene> = g.conns().copied().collect();
        let poisoned = Genome::from_parts(1, 3, 2, nodes, conns).unwrap();
        assert!(poisoned.signature().has_nonfinite());
        assert_eq!(
            poisoned.distance_lower_bound(&g, &c),
            f64::NEG_INFINITY,
            "poisoned genomes must never be pruned"
        );
        assert_eq!(*poisoned.signature(), poisoned.recompute_signature());
    }

    #[test]
    fn max_node_id_tracks_additions() {
        let c = cfg();
        let mut r = rng();
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut g = Genome::initial(0, &c, &mut r);
        assert_eq!(g.max_node_id(), 4);
        let mut ops = OpCounters::new();
        g.mutate_add_node(&mut innov, &mut r, &mut ops);
        assert_eq!(g.max_node_id(), 5);
    }
}
