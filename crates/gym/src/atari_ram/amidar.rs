//! Amidar: a lattice-tracing RAM machine.
//!
//! The player walks the edges of a rectangular lattice, painting every
//! segment it crosses; painting the full perimeter of a cell banks a
//! bonus. Four patrol enemies trace fixed circuits. Five actions: noop,
//! up, down, left, right.

use super::{RamGame, RAM_SIZE};
use genesys_neat::XorWow;

/// Lattice dimensions in intersections.
const NX: usize = 8;
const NY: usize = 6;
const N_ENEMIES: usize = 4;
const SEGMENT_SCORE: f64 = 1.0;
const CELL_SCORE: f64 = 10.0;

/// Horizontal segment id: between (x, y) and (x+1, y).
fn h_seg(x: usize, y: usize) -> usize {
    y * (NX - 1) + x
}

/// Vertical segment id: between (x, y) and (x, y+1), offset past the
/// horizontal ids.
fn v_seg(x: usize, y: usize) -> usize {
    (NX - 1) * NY + y * NX + x
}

const N_SEGMENTS: usize = (NX - 1) * NY + NX * (NY - 1);

/// The Amidar game state.
#[derive(Debug, Clone)]
pub struct Amidar {
    rng: XorWow,
    player: (u8, u8),
    enemies: [(u8, u8); N_ENEMIES],
    painted: [u8; N_SEGMENTS.div_ceil(8)],
    banked_cells: [u8; ((NX - 1) * (NY - 1)).div_ceil(8)],
    lives: u8,
    score: f64,
    tick: u32,
}

impl Amidar {
    /// Creates a game seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Amidar {
            rng: XorWow::seed_from_u64_value(seed ^ 0xA31D_A200),
            player: (0, 0),
            enemies: [
                (NX as u8 - 1, 0),
                (NX as u8 - 1, NY as u8 - 1),
                (0, NY as u8 - 1),
                (NX as u8 / 2, NY as u8 / 2),
            ],
            painted: [0; N_SEGMENTS.div_ceil(8)],
            banked_cells: [0; ((NX - 1) * (NY - 1)).div_ceil(8)],
            lives: 3,
            score: 0.0,
            tick: 0,
        }
    }

    fn is_painted(&self, seg: usize) -> bool {
        self.painted[seg / 8] & (1 << (seg % 8)) != 0
    }

    fn paint(&mut self, seg: usize) -> bool {
        let fresh = !self.is_painted(seg);
        self.painted[seg / 8] |= 1 << (seg % 8);
        fresh
    }

    fn cell_banked(&self, cell: usize) -> bool {
        self.banked_cells[cell / 8] & (1 << (cell % 8)) != 0
    }

    fn bank_cell(&mut self, cell: usize) {
        self.banked_cells[cell / 8] |= 1 << (cell % 8);
    }

    /// Segment crossed when moving from `from` in direction `action`,
    /// with the destination intersection; `None` if the move leaves the
    /// lattice.
    fn segment_for(from: (u8, u8), action: usize) -> Option<(usize, (u8, u8))> {
        let (x, y) = (from.0 as usize, from.1 as usize);
        match action {
            1 if y > 0 => Some((v_seg(x, y - 1), (from.0, from.1 - 1))),
            2 if y + 1 < NY => Some((v_seg(x, y), (from.0, from.1 + 1))),
            3 if x > 0 => Some((h_seg(x - 1, y), (from.0 - 1, from.1))),
            4 if x + 1 < NX => Some((h_seg(x, y), (from.0 + 1, from.1))),
            _ => None,
        }
    }

    /// Checks the up-to-four cells adjacent to intersection `at` for a
    /// freshly completed perimeter and banks them.
    fn bank_completed_cells(&mut self, at: (u8, u8)) -> f64 {
        let mut bonus = 0.0;
        let (ax, ay) = (at.0 as isize, at.1 as isize);
        for cx in [ax - 1, ax] {
            for cy in [ay - 1, ay] {
                if cx < 0 || cy < 0 || cx as usize >= NX - 1 || cy as usize >= NY - 1 {
                    continue;
                }
                let (cx, cy) = (cx as usize, cy as usize);
                let cell = cy * (NX - 1) + cx;
                if self.cell_banked(cell) {
                    continue;
                }
                let complete = self.is_painted(h_seg(cx, cy))
                    && self.is_painted(h_seg(cx, cy + 1))
                    && self.is_painted(v_seg(cx, cy))
                    && self.is_painted(v_seg(cx + 1, cy));
                if complete {
                    self.bank_cell(cell);
                    bonus += CELL_SCORE;
                }
            }
        }
        bonus
    }

    /// Fraction of segments painted.
    pub fn painted_fraction(&self) -> f64 {
        let painted: u32 = self.painted.iter().map(|b| b.count_ones()).sum();
        f64::from(painted) / N_SEGMENTS as f64
    }
}

impl RamGame for Amidar {
    fn name(&self) -> &'static str {
        "Amidar_ram_v0"
    }

    fn n_actions(&self) -> usize {
        5
    }

    fn restart(&mut self) {
        self.player = (0, 0);
        self.enemies = [
            (NX as u8 - 1, 0),
            (NX as u8 - 1, NY as u8 - 1),
            (0, NY as u8 - 1),
            (NX as u8 / 2, NY as u8 / 2),
        ];
        self.painted.fill(0);
        self.banked_cells.fill(0);
        self.lives = 3;
        self.score = 0.0;
        self.tick = 0;
    }

    fn tick(&mut self, action: usize) -> f64 {
        if self.game_over() {
            return 0.0;
        }
        let before = self.score;
        if let Some((seg, dest)) = Self::segment_for(self.player, action) {
            if self.paint(seg) {
                self.score += SEGMENT_SCORE;
            }
            self.player = dest;
            self.score += self.bank_completed_cells(dest);
        }
        // Enemies patrol: biased random walk along the lattice, moving
        // every other frame.
        if self.tick % 2 == 1 {
            for i in 0..N_ENEMIES {
                let dir = 1 + self.rng.below(4);
                if let Some((_, dest)) = Self::segment_for(self.enemies[i], dir) {
                    self.enemies[i] = dest;
                }
            }
        }
        if self.enemies.contains(&self.player) {
            self.lives = self.lives.saturating_sub(1);
            self.player = (0, 0);
        }
        // Board cleared: bonus and repaint.
        if self.painted_fraction() >= 1.0 {
            self.score += 100.0;
            self.painted.fill(0);
            self.banked_cells.fill(0);
        }
        self.tick += 1;
        self.score - before
    }

    fn game_over(&self) -> bool {
        self.lives == 0
    }

    fn write_ram(&self, ram: &mut [u8; RAM_SIZE]) {
        ram.fill(0);
        ram[0] = self.player.0;
        ram[1] = self.player.1;
        ram[2] = self.lives;
        let score = (self.score as u32).min(u32::from(u16::MAX));
        ram[3] = (score & 0xFF) as u8;
        ram[4] = (score >> 8) as u8;
        ram[5] = (self.tick & 0xFF) as u8;
        for (i, &(x, y)) in self.enemies.iter().enumerate() {
            ram[8 + 2 * i] = x;
            ram[9 + 2 * i] = y;
        }
        ram[16..16 + self.painted.len()].copy_from_slice(&self.painted);
        let off = 16 + self.painted.len();
        ram[off..off + self.banked_cells.len()].copy_from_slice(&self.banked_cells);
    }

    fn score(&self) -> f64 {
        self.score
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_ids_are_unique_and_in_range() {
        let mut seen = std::collections::HashSet::new();
        for y in 0..NY {
            for x in 0..NX - 1 {
                assert!(seen.insert(h_seg(x, y)));
            }
        }
        for y in 0..NY - 1 {
            for x in 0..NX {
                assert!(seen.insert(v_seg(x, y)));
            }
        }
        assert_eq!(seen.len(), N_SEGMENTS);
        assert!(seen.into_iter().all(|s| s < N_SEGMENTS));
    }

    #[test]
    fn painting_a_fresh_segment_scores_once() {
        let mut game = Amidar::new(1);
        let r1 = game.tick(4); // paint first segment
        assert!(r1 >= SEGMENT_SCORE);
        game.tick(3); // walk back over the same segment
        let r3 = game.tick(4); // repaint: no score
        assert_eq!(r3, 0.0);
    }

    #[test]
    fn completing_a_cell_banks_bonus() {
        let mut game = Amidar::new(2);
        // Trace the perimeter of cell (0,0): right, down, left, up.
        let mut total = 0.0;
        for a in [4, 2, 3, 1] {
            total += game.tick(a);
        }
        assert!(
            total >= 4.0 * SEGMENT_SCORE + CELL_SCORE,
            "perimeter walk banks the cell, got {total}"
        );
    }

    #[test]
    fn moves_off_lattice_are_ignored() {
        let mut game = Amidar::new(3);
        game.tick(1); // up from (0,0): off-lattice
        assert_eq!(game.player, (0, 0));
        game.tick(3); // left: off-lattice
        assert_eq!(game.player, (0, 0));
    }

    #[test]
    fn enemy_contact_costs_a_life() {
        let mut game = Amidar::new(4);
        game.enemies[0] = (0, 0);
        game.tick(0);
        assert_eq!(game.lives, 2);
    }

    #[test]
    fn restart_clears_paint() {
        let mut game = Amidar::new(5);
        game.tick(4);
        assert!(game.painted_fraction() > 0.0);
        game.restart();
        assert_eq!(game.painted_fraction(), 0.0);
        assert_eq!(game.score(), 0.0);
    }
}
