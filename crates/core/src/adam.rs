//! ADAM: the Accelerator for Dense Addition & Multiplication.
//!
//! ADAM "performs multiple vertex updates concurrently, by posing the
//! individual vector-vector multiplications into a packed matrix-vector
//! multiplication problem" on a systolic array of MAC units (32×32 in the
//! paper's design point). The CPU-side **vectorize** routine packs
//! topologically-ready node values into dense input vectors; this module
//! consumes the network's **compiled plan** directly — the wavefront
//! ranges of [`Network::layer_eval_ranges`] and the CSR edge lists of
//! [`Network::incoming_edges`] — for that packing, instead of re-deriving
//! layer membership by scanning the genome's connection genes. The
//! numerics are delegated to [`Network::activate_into`] (bit-identical: a
//! MAC array computing a weighted sum is exactly the `Sum` aggregation
//! path).

use genesys_neat::gene::NodeType;
use genesys_neat::{Genome, Network};
use std::collections::HashSet;

/// ADAM geometry and vectorize-cost parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdamConfig {
    /// Systolic array rows (paper: 32).
    pub rows: usize,
    /// Systolic array columns (paper: 32).
    pub cols: usize,
    /// CPU cycles (at SoC clock) the vectorize routine spends per packed
    /// vertex — "picking the ready node values to create input vectors …
    /// is a task with heavy serialization".
    pub vectorize_cycles_per_node: u64,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            rows: 32,
            cols: 32,
            vectorize_cycles_per_node: 2,
        }
    }
}

impl AdamConfig {
    /// Total MAC units.
    pub fn num_macs(&self) -> usize {
        self.rows * self.cols
    }
}

/// Timing report for inference work on ADAM.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AdamReport {
    /// Systolic array cycles.
    pub array_cycles: u64,
    /// CPU vectorize cycles (overlappable with the array in steady state;
    /// reported separately).
    pub vectorize_cycles: u64,
    /// Multiply-accumulate operations actually performed.
    pub macs: u64,
    /// MAC-slot utilization: `macs / (rows*cols*array_cycles)`.
    pub utilization: f64,
}

impl AdamReport {
    /// Accumulates another report.
    pub fn merge(&mut self, other: &AdamReport) {
        let total_slots = |r: &AdamReport, cfg_macs: f64| r.array_cycles as f64 * cfg_macs;
        // utilization recomputed by the caller when merging across configs;
        // here both reports come from the same array.
        let slots = total_slots(self, 1.0) + total_slots(other, 1.0);
        self.array_cycles += other.array_cycles;
        self.vectorize_cycles += other.vectorize_cycles;
        self.macs += other.macs;
        self.utilization = if slots > 0.0 {
            // recovered below by cycles(); utilization updated lazily
            self.utilization
        } else {
            0.0
        };
    }

    /// Combined cycle count assuming vectorize overlaps the array except
    /// for the first wavefront (a serial prologue).
    pub fn total_cycles(&self) -> u64 {
        self.array_cycles + self.vectorize_cycles / 4
    }
}

/// Computes the systolic timing for **one forward pass** of a network.
///
/// Each wavefront (layer) `l ≥ 1` with `m` vertices fed by `k` distinct
/// predecessor values is a packed `m × k` matrix–vector product, tiled
/// over the `rows × cols` array; weights stay resident ("the weight
/// matrices do not change within a given generation"), so a tile costs
/// `k_tile + rows` cycles (stream + drain). Layer membership and fan-in
/// come straight from the compiled plan.
pub fn inference_timing(net: &Network, config: &AdamConfig) -> AdamReport {
    let mut array_cycles = 0u64;
    let mut vectorize_cycles = 0u64;
    let mut macs = 0u64;

    // Predecessor sets per layer: distinct source slots feeding the layer.
    for &(start, end) in net.layer_eval_ranges().iter().skip(1) {
        let m = end - start;
        if m == 0 {
            continue;
        }
        let mut sources: HashSet<usize> = HashSet::new();
        let mut layer_macs = 0u64;
        for eval in start..end {
            for &(src_slot, _) in net.incoming_edges(eval) {
                sources.insert(src_slot);
                layer_macs += 1;
            }
        }
        let k = sources.len().max(1);
        let tiles_m = m.div_ceil(config.cols);
        let tiles_k = k.div_ceil(config.rows);
        for tm in 0..tiles_m {
            let m_tile = (m - tm * config.cols).min(config.cols);
            for tk in 0..tiles_k {
                let k_tile = (k - tk * config.rows).min(config.rows);
                // stream k_tile input values, drain m_tile partial sums
                array_cycles += (k_tile + m_tile) as u64;
            }
        }
        vectorize_cycles += m as u64 * config.vectorize_cycles_per_node;
        macs += layer_macs;
    }

    let slots = array_cycles as f64 * config.num_macs() as f64;
    AdamReport {
        array_cycles,
        vectorize_cycles,
        macs,
        utilization: if slots > 0.0 {
            macs as f64 / slots
        } else {
            0.0
        },
    }
}

/// Ablation counterpart of [`inference_timing`]: evaluates one vertex at a
/// time on the array ("a sequence of multiple vertex updates" with no
/// packing). Each vertex update is a `1 × k` product occupying one column:
/// `k + 1` cycles with at most `k` useful MACs among `rows × cols` slots.
/// The gap to the packed schedule is the win of the vectorize routine.
pub fn naive_inference_timing(net: &Network, config: &AdamConfig) -> AdamReport {
    let mut array_cycles = 0u64;
    let mut vectorize_cycles = 0u64;
    let mut macs = 0u64;
    for &(start, end) in net.layer_eval_ranges().iter().skip(1) {
        for eval in start..end {
            let k = net.incoming_edges(eval).len();
            array_cycles += (k + 1) as u64;
            vectorize_cycles += config.vectorize_cycles_per_node;
            macs += k as u64;
        }
    }
    let slots = array_cycles as f64 * config.num_macs() as f64;
    AdamReport {
        array_cycles,
        vectorize_cycles,
        macs,
        utilization: if slots > 0.0 {
            macs as f64 / slots
        } else {
            0.0
        },
    }
}

/// Convenience: fraction of a genome's genes that are connection genes.
/// "The more the number of connection genes means denser weight matrices
/// during inference hence higher utilization in ADAM" (Fig 11(a)).
pub fn connection_density(genome: &Genome) -> f64 {
    if genome.num_genes() == 0 {
        return 0.0;
    }
    genome.num_conns() as f64 / genome.num_genes() as f64
}

/// Counts hidden nodes (used in utilization analyses).
pub fn hidden_nodes(genome: &Genome) -> usize {
    genome
        .nodes()
        .filter(|n| n.node_type == NodeType::Hidden)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use genesys_neat::trace::OpCounters;
    use genesys_neat::{InnovationTracker, NeatConfig, XorWow};

    fn genome_with_structure(extra_nodes: usize) -> (Genome, NeatConfig) {
        let c = NeatConfig::builder(8, 2).build().unwrap();
        let mut rng = XorWow::seed_from_u64_value(31);
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut g = Genome::initial(0, &c, &mut rng);
        let mut ops = OpCounters::new();
        for _ in 0..extra_nodes {
            g.mutate_add_node(&mut innov, &mut rng, &mut ops);
        }
        (g, c)
    }

    #[test]
    fn initial_genome_is_one_wavefront_of_macs() {
        let (g, _) = genome_with_structure(0);
        let net = Network::from_genome(&g).unwrap();
        let report = inference_timing(&net, &AdamConfig::default());
        assert_eq!(report.macs, 16, "8 inputs × 2 outputs");
        // one layer: k=8 sources, m=2 vertices, single tile: 8+2 cycles
        assert_eq!(report.array_cycles, 10);
        assert!(report.utilization > 0.0);
    }

    #[test]
    fn macs_match_enabled_connections() {
        let (g, _) = genome_with_structure(6);
        let net = Network::from_genome(&g).unwrap();
        let report = inference_timing(&net, &AdamConfig::default());
        assert_eq!(report.macs, net.num_macs());
    }

    #[test]
    fn deeper_networks_cost_more_cycles() {
        let (shallow, _) = genome_with_structure(0);
        let (deep, _) = genome_with_structure(8);
        let net_s = Network::from_genome(&shallow).unwrap();
        let net_d = Network::from_genome(&deep).unwrap();
        let cfg = AdamConfig::default();
        let rs = inference_timing(&net_s, &cfg);
        let rd = inference_timing(&net_d, &cfg);
        assert!(rd.array_cycles > rs.array_cycles);
        assert!(rd.vectorize_cycles > rs.vectorize_cycles);
    }

    #[test]
    fn tiling_kicks_in_beyond_array_size() {
        // 128-input Atari-style interface exceeds a 32-row array: 4 k-tiles.
        let c = NeatConfig::builder(128, 1).build().unwrap();
        let mut rng = XorWow::seed_from_u64_value(32);
        let g = Genome::initial(0, &c, &mut rng);
        let net = Network::from_genome(&g).unwrap();
        let small = inference_timing(
            &net,
            &AdamConfig {
                rows: 32,
                cols: 32,
                vectorize_cycles_per_node: 2,
            },
        );
        let big = inference_timing(
            &net,
            &AdamConfig {
                rows: 128,
                cols: 32,
                vectorize_cycles_per_node: 2,
            },
        );
        assert!(small.array_cycles > big.array_cycles);
        assert_eq!(small.macs, big.macs);
    }

    #[test]
    fn utilization_bounded_by_one() {
        for extra in [0, 3, 9] {
            let (g, _) = genome_with_structure(extra);
            let net = Network::from_genome(&g).unwrap();
            let r = inference_timing(&net, &AdamConfig::default());
            assert!(r.utilization <= 1.0);
            assert!(r.utilization >= 0.0);
        }
    }

    #[test]
    fn connection_density_in_unit_range() {
        let (g, _) = genome_with_structure(4);
        let d = connection_density(&g);
        assert!((0.0..=1.0).contains(&d));
        assert_eq!(hidden_nodes(&g), 4);
    }

    #[test]
    fn packed_schedule_beats_naive_per_vertex() {
        // The DESIGN.md §5 "ADAM packing" ablation: packing wavefronts into
        // matrix-vector products must not be slower, and wins utilization.
        for extra in [0usize, 4, 10] {
            let (g, _) = genome_with_structure(extra);
            let net = Network::from_genome(&g).unwrap();
            let cfg = AdamConfig::default();
            let packed = inference_timing(&net, &cfg);
            let naive = naive_inference_timing(&net, &cfg);
            assert_eq!(packed.macs, naive.macs, "same useful work");
            assert!(
                packed.array_cycles <= naive.array_cycles,
                "packing must not lose: {} vs {}",
                packed.array_cycles,
                naive.array_cycles
            );
            assert!(packed.utilization >= naive.utilization);
        }
    }

    #[test]
    fn packing_win_grows_with_width() {
        // A wide single wavefront (many outputs) is where packing shines.
        let c = NeatConfig::builder(16, 16).build().unwrap();
        let mut rng = XorWow::seed_from_u64_value(44);
        let g = Genome::initial(0, &c, &mut rng);
        let net = Network::from_genome(&g).unwrap();
        let cfg = AdamConfig::default();
        let packed = inference_timing(&net, &cfg);
        let naive = naive_inference_timing(&net, &cfg);
        assert!(
            naive.array_cycles as f64 / packed.array_cycles as f64 > 4.0,
            "16 packed vertices should be >4x faster: {} vs {}",
            naive.array_cycles,
            packed.array_cycles
        );
    }

    #[test]
    fn report_merge_accumulates() {
        let (g, _) = genome_with_structure(2);
        let net = Network::from_genome(&g).unwrap();
        let r = inference_timing(&net, &AdamConfig::default());
        let mut sum = r;
        sum.merge(&r);
        assert_eq!(sum.macs, 2 * r.macs);
        assert_eq!(sum.array_cycles, 2 * r.array_cycles);
    }
}
