//! Layer-gene evolution: "the only thing that would change is the
//! definition of gene" (the paper's Future Directions).
//!
//! For problems with large parameter spaces the paper proposes running
//! GeneSys as a *topology explorer* over deep MLPs, where each gene
//! describes a whole **layer** instead of a single neuron/synapse —
//! "neuro-evolution to generate deep neural networks falls in this
//! category". This module implements that gene redefinition: a
//! [`LayerGenome`] is an ordered list of [`LayerGene`]s, evolved with the
//! same crossover/perturb/add/delete operator classes the EvE PEs
//! implement, and expressed into an ordinary [`Genome`] so the rest of the
//! stack (ADAM, codec, genome buffer) is reused unchanged.

use crate::activation::Activation;
use crate::error::GenomeError;
use crate::gene::{ConnGene, NodeGene, NodeId};
use crate::genome::Genome;
use crate::rng::XorWow;
use crate::trace::OpCounters;

/// One layer gene: the whole-layer analogue of a node gene.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerGene {
    /// Number of units in the layer.
    pub units: usize,
    /// Activation applied by every unit.
    pub activation: Activation,
    /// Shared weight scale: expressed weights are drawn deterministically
    /// per (src, dst) pair and multiplied by this gain.
    pub gain: f64,
}

impl LayerGene {
    /// A default hidden layer (the value the Add-Gene engine would insert).
    pub fn with_default_attributes(units: usize) -> Self {
        LayerGene {
            units,
            activation: Activation::Relu,
            gain: 1.0,
        }
    }
}

/// Hyper-parameters for layer-genome evolution.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerConfig {
    /// Input dimension of the expressed MLP.
    pub num_inputs: usize,
    /// Output dimension.
    pub num_outputs: usize,
    /// Maximum hidden layers.
    pub max_layers: usize,
    /// Unit count bounds for a hidden layer.
    pub min_units: usize,
    /// Unit count bounds for a hidden layer.
    pub max_units: usize,
    /// Probability of inserting a layer per mutation.
    pub layer_add_prob: f64,
    /// Probability of deleting a layer per mutation.
    pub layer_delete_prob: f64,
    /// Probability of resizing a layer per mutation.
    pub resize_prob: f64,
    /// Probability of perturbing a layer's gain per mutation.
    pub gain_mutate_prob: f64,
    /// Activations available to mutation.
    pub activation_options: Vec<Activation>,
}

impl LayerConfig {
    /// Sensible defaults for a given interface.
    pub fn new(num_inputs: usize, num_outputs: usize) -> Self {
        LayerConfig {
            num_inputs,
            num_outputs,
            max_layers: 6,
            min_units: 2,
            max_units: 64,
            layer_add_prob: 0.15,
            layer_delete_prob: 0.1,
            resize_prob: 0.4,
            gain_mutate_prob: 0.5,
            activation_options: vec![Activation::Relu, Activation::Tanh, Activation::Sigmoid],
        }
    }
}

/// A genome whose genes are layers.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerGenome {
    key: u64,
    hidden: Vec<LayerGene>,
    fitness: Option<f64>,
}

impl LayerGenome {
    /// The minimal initial topology: no hidden layers (direct in→out map),
    /// mirroring NEAT's minimal-start principle.
    pub fn minimal(key: u64) -> Self {
        LayerGenome {
            key,
            hidden: Vec::new(),
            fitness: None,
        }
    }

    /// Genome key.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Hidden layer genes, input-to-output order.
    pub fn layers(&self) -> &[LayerGene] {
        &self.hidden
    }

    /// Recorded fitness.
    pub fn fitness(&self) -> Option<f64> {
        self.fitness
    }

    /// Records fitness.
    pub fn set_fitness(&mut self, fitness: f64) {
        self.fitness = Some(fitness);
    }

    /// Parameter count of the expressed MLP.
    pub fn num_parameters(&self, config: &LayerConfig) -> usize {
        let mut dims = vec![config.num_inputs];
        dims.extend(self.hidden.iter().map(|l| l.units));
        dims.push(config.num_outputs);
        dims.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
    }

    /// Applies the four EvE operator classes at layer granularity.
    pub fn mutate(&mut self, config: &LayerConfig, rng: &mut XorWow, ops: &mut OpCounters) {
        if self.hidden.len() < config.max_layers && rng.chance(config.layer_add_prob) {
            let units = config.min_units + rng.below(config.max_units - config.min_units + 1);
            let at = rng.below(self.hidden.len() + 1);
            self.hidden
                .insert(at, LayerGene::with_default_attributes(units));
            ops.add_node += 1;
        }
        if !self.hidden.is_empty() && rng.chance(config.layer_delete_prob) {
            let at = rng.below(self.hidden.len());
            self.hidden.remove(at);
            ops.delete_node += 1;
        }
        for layer in &mut self.hidden {
            if rng.chance(config.resize_prob) {
                let delta = 1 + rng.below(4);
                layer.units = if rng.chance(0.5) {
                    (layer.units + delta).min(config.max_units)
                } else {
                    layer.units.saturating_sub(delta).max(config.min_units)
                };
                ops.perturb += 1;
            }
            if rng.chance(config.gain_mutate_prob) {
                layer.gain = (layer.gain + rng.next_gaussian() * 0.2).clamp(0.05, 4.0);
                ops.perturb += 1;
            }
            if rng.chance(0.1) {
                layer.activation = Activation::random(rng, &config.activation_options);
                ops.perturb += 1;
            }
        }
    }

    /// Layer-wise crossover: matching depth positions cherry-pick
    /// attributes; excess layers come from the fitter parent.
    pub fn crossover(
        key: u64,
        fit: &LayerGenome,
        other: &LayerGenome,
        rng: &mut XorWow,
        ops: &mut OpCounters,
    ) -> LayerGenome {
        let mut hidden = Vec::with_capacity(fit.hidden.len());
        for (i, layer) in fit.hidden.iter().enumerate() {
            let mut child = *layer;
            if let Some(o) = other.hidden.get(i) {
                if !rng.chance(0.5) {
                    child.units = o.units;
                }
                if !rng.chance(0.5) {
                    child.activation = o.activation;
                }
                if !rng.chance(0.5) {
                    child.gain = o.gain;
                }
            }
            ops.crossover += 1;
            hidden.push(child);
        }
        LayerGenome {
            key,
            hidden,
            fitness: None,
        }
    }

    /// Expresses the layer genome into an ordinary dense [`Genome`] so the
    /// whole GeneSys stack (phenotype, ADAM timing, 64-bit codec, genome
    /// buffer) applies unchanged. Weights are derived deterministically
    /// from the genome key and layer gains — the layer gene *is* the unit
    /// of evolution; per-weight refinement is the job of
    /// [`tuning`](crate::tuning).
    ///
    /// # Errors
    ///
    /// Propagates [`GenomeError`] from genome assembly (cannot occur for
    /// in-range configs; kept for API honesty).
    pub fn express(&self, config: &LayerConfig) -> Result<Genome, GenomeError> {
        let mut dims = vec![config.num_inputs];
        dims.extend(self.hidden.iter().map(|l| l.units));
        dims.push(config.num_outputs);

        let mut nodes: Vec<NodeGene> = Vec::new();
        let mut ids_per_layer: Vec<Vec<NodeId>> = Vec::new();
        // Interface ids first (the Genome id-layout contract), hidden after.
        let mut next_hidden = (config.num_inputs + config.num_outputs) as u32;
        for (l, &n) in dims.iter().enumerate() {
            let mut ids = Vec::with_capacity(n);
            for k in 0..n {
                let id = if l == 0 {
                    let id = NodeId(k as u32);
                    nodes.push(NodeGene::input(id));
                    id
                } else if l == dims.len() - 1 {
                    let id = NodeId((config.num_inputs + k) as u32);
                    nodes.push(NodeGene::output(id));
                    id
                } else {
                    let id = NodeId(next_hidden);
                    next_hidden += 1;
                    let mut node = NodeGene::hidden(id);
                    node.activation = self.hidden[l - 1].activation;
                    nodes.push(node);
                    id
                };
                ids.push(id);
            }
            ids_per_layer.push(ids);
        }

        // Deterministic weight painter seeded by the genome key.
        let mut painter = XorWow::seed_from_u64_value(self.key ^ 0x017A_9E12);
        let mut conns = Vec::new();
        for l in 0..dims.len() - 1 {
            let gain = if l < self.hidden.len() {
                self.hidden[l].gain
            } else {
                1.0
            };
            let fan_in = dims[l].max(1) as f64;
            let scale = gain / fan_in.sqrt();
            for &src in &ids_per_layer[l] {
                for &dst in &ids_per_layer[l + 1] {
                    conns.push(ConnGene::new(src, dst, painter.next_gaussian() * scale));
                }
            }
        }
        Genome::from_parts(
            self.key,
            config.num_inputs,
            config.num_outputs,
            nodes,
            conns,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;

    fn config() -> LayerConfig {
        LayerConfig::new(6, 2)
    }

    #[test]
    fn minimal_genome_expresses_direct_mlp() {
        let g = LayerGenome::minimal(1);
        let c = config();
        let expressed = g.express(&c).unwrap();
        assert_eq!(expressed.num_nodes(), 8);
        assert_eq!(expressed.num_conns(), 12);
        let net = Network::from_genome(&expressed).unwrap();
        assert_eq!(net.activate(&[0.0; 6]).len(), 2);
    }

    #[test]
    fn parameter_count_matches_dense_mlp_formula() {
        let mut g = LayerGenome::minimal(1);
        g.hidden.push(LayerGene::with_default_attributes(10));
        let c = config();
        // 6*10+10 + 10*2+2 = 92
        assert_eq!(g.num_parameters(&c), 92);
    }

    #[test]
    fn mutation_respects_bounds() {
        let c = config();
        let mut g = LayerGenome::minimal(2);
        let mut rng = XorWow::seed_from_u64_value(5);
        let mut ops = OpCounters::new();
        for _ in 0..200 {
            g.mutate(&c, &mut rng, &mut ops);
            assert!(g.layers().len() <= c.max_layers);
            for layer in g.layers() {
                assert!((c.min_units..=c.max_units).contains(&layer.units));
                assert!(layer.gain >= 0.05 && layer.gain <= 4.0);
            }
        }
        assert!(ops.total() > 0);
    }

    #[test]
    fn mutated_genomes_always_express_validly() {
        let c = config();
        let mut rng = XorWow::seed_from_u64_value(6);
        let mut g = LayerGenome::minimal(3);
        let mut ops = OpCounters::new();
        for _ in 0..50 {
            g.mutate(&c, &mut rng, &mut ops);
            let expressed = g.express(&c).unwrap();
            assert!(expressed.validate().is_ok());
            let net = Network::from_genome(&expressed).unwrap();
            assert!(net.activate(&[0.1; 6]).iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn expression_is_deterministic_per_key() {
        let c = config();
        let mut g = LayerGenome::minimal(9);
        g.hidden.push(LayerGene::with_default_attributes(5));
        let a = g.express(&c).unwrap();
        let b = g.express(&c).unwrap();
        for (ca, cb) in a.conns().zip(b.conns()) {
            assert_eq!(ca.weight, cb.weight);
        }
        // A different key paints different weights.
        let mut g2 = g.clone();
        g2.key = 10;
        let d = g2.express(&c).unwrap();
        let differs = a.conns().zip(d.conns()).any(|(x, y)| x.weight != y.weight);
        assert!(differs);
    }

    #[test]
    fn crossover_matches_depth_and_keeps_fitter_excess() {
        let mut rng = XorWow::seed_from_u64_value(7);
        let mut ops = OpCounters::new();
        let mut fit = LayerGenome::minimal(0);
        fit.hidden = vec![
            LayerGene::with_default_attributes(8),
            LayerGene::with_default_attributes(4),
        ];
        let mut other = LayerGenome::minimal(1);
        other.hidden = vec![LayerGene::with_default_attributes(16)];
        let child = LayerGenome::crossover(2, &fit, &other, &mut rng, &mut ops);
        assert_eq!(child.layers().len(), 2, "depth follows the fitter parent");
        assert!(child.layers()[0].units == 8 || child.layers()[0].units == 16);
        assert_eq!(
            child.layers()[1].units,
            4,
            "excess layer from fitter parent"
        );
        assert_eq!(ops.crossover, 2);
    }

    #[test]
    fn layer_evolution_plus_tuning_learns_a_mapping() {
        // End-to-end: evolve depth/width, express, tune weights — the
        // paper's hybrid loop in miniature.
        let c = LayerConfig::new(2, 1);
        let mut rng = XorWow::seed_from_u64_value(11);
        let target = |net: &Network| {
            let probes: [[f64; 2]; 4] = [[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]];
            let mut fit = 4.0;
            for p in &probes {
                let want = (p[0] - p[1]).abs(); // XOR-ish
                let got = net.activate(p)[0];
                fit -= (got - want) * (got - want);
            }
            fit
        };
        let mut best = f64::MIN;
        let mut ops = OpCounters::new();
        for key in 0..12u64 {
            let mut g = LayerGenome::minimal(key);
            g.mutate(&c, &mut rng, &mut ops);
            let expressed = g.express(&c).unwrap();
            let tuned = crate::tuning::tune_weights(
                &expressed,
                &crate::tuning::TuningConfig::default(),
                key,
                target,
            );
            best = best.max(tuned.fitness);
        }
        assert!(
            best > 2.8,
            "hybrid search should fit XOR-ish target, best {best}"
        );
    }
}
