//! Per-generation statistics — the raw material of Figs 4, 5, 10(d) and
//! 11(a) of the paper.

use crate::genome::Genome;
use crate::trace::{GenerationTrace, OpCounters};
use std::fmt;

/// Summary of one generation: fitness, structure and operation counts.
///
/// Equality ignores the wall-clock phase timings (`speciate_ns`,
/// `reproduce_ns`, `eval_ns`): two bit-identical runs produce equal
/// stats even though their clocks differ.
#[derive(Debug, Clone)]
pub struct GenerationStats {
    /// Generation index (0-based).
    pub generation: usize,
    /// Best raw fitness in the generation.
    pub max_fitness: f64,
    /// Mean raw fitness.
    pub mean_fitness: f64,
    /// Worst raw fitness.
    pub min_fitness: f64,
    /// Number of living species.
    pub num_species: usize,
    /// Total node genes across the population (Fig 11(a)).
    pub total_nodes: usize,
    /// Total connection genes across the population (Fig 11(a)).
    pub total_conns: usize,
    /// Node + connection genes across the population (Fig 4(b)).
    pub total_genes: usize,
    /// Genes of the largest genome.
    pub max_genome_genes: usize,
    /// Population memory footprint in the 8-byte hardware gene encoding
    /// (Fig 5(b); the paper reports <1 MB per generation).
    pub memory_bytes: usize,
    /// Reproduction operation tallies for the step that produced the *next*
    /// generation (Fig 5(a)).
    pub ops: OpCounters,
    /// Times the most-reused parent was used (Fig 4(c) GLR metric).
    pub fittest_parent_reuse: usize,
    /// Total MAC operations for one inference pass over the population.
    pub inference_macs: u64,
    /// Environment steps consumed evaluating this generation, summed
    /// order-insensitively across the population (0 for synthetic fitness
    /// functions that report no steps). Filled in by the session backends.
    pub env_steps: u64,
    /// Wall-clock nanoseconds spent in the speciation phase (speciate +
    /// stagnation removal + fitness sharing) of the step that produced
    /// the *next* generation. Excluded from equality.
    pub speciate_ns: u64,
    /// Wall-clock nanoseconds spent in the reproduction phase of the
    /// step that produced the *next* generation. Excluded from equality.
    pub reproduce_ns: u64,
    /// Wall-clock nanoseconds spent evaluating this generation's
    /// genomes. Excluded from equality.
    pub eval_ns: u64,
}

impl PartialEq for GenerationStats {
    fn eq(&self, other: &Self) -> bool {
        // Everything except the phase timings: timings are wall-clock
        // measurements and differ between bit-identical runs.
        self.generation == other.generation
            && self.max_fitness == other.max_fitness
            && self.mean_fitness == other.mean_fitness
            && self.min_fitness == other.min_fitness
            && self.num_species == other.num_species
            && self.total_nodes == other.total_nodes
            && self.total_conns == other.total_conns
            && self.total_genes == other.total_genes
            && self.max_genome_genes == other.max_genome_genes
            && self.memory_bytes == other.memory_bytes
            && self.ops == other.ops
            && self.fittest_parent_reuse == other.fittest_parent_reuse
            && self.inference_macs == other.inference_macs
            && self.env_steps == other.env_steps
    }
}

impl GenerationStats {
    /// Gathers structure statistics from a population of evaluated genomes.
    /// `ops` / `reuse` come from the reproduction step (zero for the final
    /// generation, which produces no children).
    pub fn collect(
        generation: usize,
        genomes: &[Genome],
        num_species: usize,
        trace: Option<&GenerationTrace>,
        inference_macs: u64,
    ) -> GenerationStats {
        let mut max_fitness = f64::NEG_INFINITY;
        let mut min_fitness = f64::INFINITY;
        let mut sum = 0.0;
        let mut total_nodes = 0;
        let mut total_conns = 0;
        let mut max_genome_genes = 0;
        for g in genomes {
            let f = g.fitness().unwrap_or(0.0);
            max_fitness = max_fitness.max(f);
            min_fitness = min_fitness.min(f);
            sum += f;
            total_nodes += g.num_nodes();
            total_conns += g.num_conns();
            max_genome_genes = max_genome_genes.max(g.num_genes());
        }
        let n = genomes.len().max(1);
        let total_genes = total_nodes + total_conns;
        GenerationStats {
            generation,
            max_fitness,
            mean_fitness: sum / n as f64,
            min_fitness,
            num_species,
            total_nodes,
            total_conns,
            total_genes,
            max_genome_genes,
            memory_bytes: total_genes * crate::genome::GENE_BYTES,
            ops: trace.map(|t| t.totals()).unwrap_or_default(),
            fittest_parent_reuse: trace.map(|t| t.fittest_parent_reuse()).unwrap_or(0),
            inference_macs,
            env_steps: 0,
            speciate_ns: 0,
            reproduce_ns: 0,
            eval_ns: 0,
        }
    }
}

impl fmt::Display for GenerationStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gen {:>4}  fit max/mean/min {:>10.3}/{:>10.3}/{:>10.3}  species {:>3}  genes {:>8}  mem {:>8} B  ops {:>9}  reuse {:>3}",
            self.generation,
            self.max_fitness,
            self.mean_fitness,
            self.min_fitness,
            self.num_species,
            self.total_genes,
            self.memory_bytes,
            self.ops.total(),
            self.fittest_parent_reuse,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NeatConfig;
    use crate::rng::XorWow;

    #[test]
    fn collect_computes_aggregates() {
        let c = NeatConfig::builder(2, 1).build().unwrap();
        let mut r = XorWow::seed_from_u64_value(4);
        let mut genomes: Vec<Genome> = (0..4).map(|k| Genome::initial(k, &c, &mut r)).collect();
        for (i, g) in genomes.iter_mut().enumerate() {
            g.set_fitness(i as f64);
        }
        let s = GenerationStats::collect(3, &genomes, 2, None, 100);
        assert_eq!(s.generation, 3);
        assert_eq!(s.max_fitness, 3.0);
        assert_eq!(s.min_fitness, 0.0);
        assert!((s.mean_fitness - 1.5).abs() < 1e-12);
        assert_eq!(s.num_species, 2);
        // initial genome: 3 nodes + 2 conns = 5 genes each
        assert_eq!(s.total_genes, 20);
        assert_eq!(s.memory_bytes, 160);
        assert_eq!(s.inference_macs, 100);
        assert_eq!(s.fittest_parent_reuse, 0);
    }

    #[test]
    fn display_is_nonempty() {
        let c = NeatConfig::builder(2, 1).build().unwrap();
        let mut r = XorWow::seed_from_u64_value(4);
        let mut g = Genome::initial(0, &c, &mut r);
        g.set_fitness(1.0);
        let s = GenerationStats::collect(0, &[g], 1, None, 0);
        assert!(!s.to_string().is_empty());
    }
}
