//! Error types for configuration and genome validation.

use std::error::Error;
use std::fmt;

/// Error returned when a [`NeatConfig`](crate::NeatConfig) is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A probability-like field was outside `[0, 1]`.
    ProbabilityOutOfRange {
        /// Name of the offending field.
        field: &'static str,
    },
    /// The population size was zero.
    EmptyPopulation,
    /// The number of inputs or outputs was zero.
    EmptyInterface,
    /// A numeric bound was inconsistent (e.g. `weight_min > weight_max`).
    InvalidBound {
        /// Name of the offending field pair.
        field: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ProbabilityOutOfRange { field } => {
                write!(f, "probability field `{field}` must lie in [0, 1]")
            }
            ConfigError::EmptyPopulation => write!(f, "population size must be at least 1"),
            ConfigError::EmptyInterface => {
                write!(f, "number of inputs and outputs must both be at least 1")
            }
            ConfigError::InvalidBound { field } => {
                write!(f, "bound `{field}` is inconsistent (min exceeds max)")
            }
        }
    }
}

impl Error for ConfigError {}

/// Error returned when assembling a [`Genome`](crate::Genome) from parts that
/// violate its structural invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenomeError {
    /// A connection referenced a node id that is not present in the genome.
    DanglingConnection {
        /// Source node id of the offending connection.
        src: u32,
        /// Destination node id of the offending connection.
        dst: u32,
    },
    /// A connection's destination was an input node (inputs have no
    /// incoming edges in NEAT).
    ConnectionIntoInput {
        /// Destination node id of the offending connection.
        dst: u32,
    },
    /// The connection graph contained a cycle; phenotypes must stay
    /// feed-forward (the paper's inference is "processing an acyclic
    /// directed graph").
    Cycle,
    /// An expected input or output node was missing.
    MissingInterfaceNode {
        /// Node id that was expected but absent.
        id: u32,
    },
}

impl fmt::Display for GenomeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenomeError::DanglingConnection { src, dst } => {
                write!(f, "connection {src}->{dst} references a missing node")
            }
            GenomeError::ConnectionIntoInput { dst } => {
                write!(f, "connection terminates at input node {dst}")
            }
            GenomeError::Cycle => write!(f, "connection graph contains a cycle"),
            GenomeError::MissingInterfaceNode { id } => {
                write!(f, "interface node {id} is missing from the genome")
            }
        }
    }
}

impl Error for GenomeError {}
