//! Gene types: the basic building blocks of a genome (Fig 3(c)).
//!
//! NEAT uses two gene kinds: **node genes** describing neurons (id, type,
//! bias, response, activation, aggregation) and **connection genes**
//! describing synapses (source, destination, weight, enabled flag). Both are
//! addressed by stable keys — the node id, or the `(src, dst)` pair — which
//! is exactly what the hardware Gene Split block aligns on when streaming
//! two parents into a PE.

use crate::activation::Activation;
use crate::aggregation::Aggregation;
use std::fmt;

/// Identifier of a node gene.
///
/// Input nodes occupy ids `0..num_inputs`, output nodes
/// `num_inputs..num_inputs+num_outputs`, and hidden nodes are handed out by
/// the [`InnovationTracker`](crate::InnovationTracker) above that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the raw id value.
    pub fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Structural role of a node (the 2-bit *type* field of the hardware gene
/// word: `00` hidden, `01` input, `10` output).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
#[repr(u8)]
pub enum NodeType {
    /// Hidden node, created by add-node mutations.
    #[default]
    Hidden = 0,
    /// Input (sensor) node; receives an observation component.
    Input = 1,
    /// Output (actuator) node; drives an action component.
    Output = 2,
}

impl NodeType {
    /// Hardware encoding of the node type field.
    pub fn to_code(self) -> u8 {
        self as u8
    }

    /// Decodes the 2-bit node type field; the reserved `11` pattern decodes
    /// as hidden.
    pub fn from_code(code: u8) -> NodeType {
        match code & 0b11 {
            1 => NodeType::Input,
            2 => NodeType::Output,
            _ => NodeType::Hidden,
        }
    }
}

/// A node gene: one neuron of the evolved network.
///
/// Attributes follow Fig 6 of the paper: `{bias, response, activation,
/// aggregation}`. The node computes
/// `activation(bias + response * aggregation(weighted inputs))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeGene {
    /// Stable key of this gene.
    pub id: NodeId,
    /// Structural role (input/hidden/output).
    pub node_type: NodeType,
    /// Additive bias.
    pub bias: f64,
    /// Multiplicative gain applied to the aggregated input.
    pub response: f64,
    /// Activation function.
    pub activation: Activation,
    /// Aggregation function.
    pub aggregation: Aggregation,
}

impl NodeGene {
    /// Creates a hidden node with the given id and default attributes
    /// (zero bias, unit response, sigmoid over sum) — the defaults the
    /// hardware Add-Gene engine inserts.
    pub fn hidden(id: NodeId) -> Self {
        NodeGene {
            id,
            node_type: NodeType::Hidden,
            bias: 0.0,
            response: 1.0,
            activation: Activation::Sigmoid,
            aggregation: Aggregation::Sum,
        }
    }

    /// Creates an input node. Input nodes are pass-throughs: their
    /// attributes are never used during evaluation but participate in the
    /// gene stream for alignment.
    pub fn input(id: NodeId) -> Self {
        NodeGene {
            node_type: NodeType::Input,
            ..NodeGene::hidden(id)
        }
    }

    /// Creates an output node with default attributes.
    pub fn output(id: NodeId) -> Self {
        NodeGene {
            node_type: NodeType::Output,
            ..NodeGene::hidden(id)
        }
    }

    /// Distance between the attribute sets of two node genes, used by
    /// genome compatibility (Section II-D speciation). Mirrors
    /// `neat-python`: |Δbias| + |Δresponse| + 1 per differing discrete
    /// attribute.
    pub fn attribute_distance(&self, other: &NodeGene) -> f64 {
        let mut d = (self.bias - other.bias).abs() + (self.response - other.response).abs();
        if self.activation != other.activation {
            d += 1.0;
        }
        if self.aggregation != other.aggregation {
            d += 1.0;
        }
        d
    }
}

/// Key of a connection gene: ordered `(source, destination)` node pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnKey {
    /// Source node id.
    pub src: NodeId,
    /// Destination node id.
    pub dst: NodeId,
}

impl ConnKey {
    /// Creates a connection key.
    pub fn new(src: NodeId, dst: NodeId) -> Self {
        ConnKey { src, dst }
    }
}

impl fmt::Display for ConnKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.src, self.dst)
    }
}

/// A connection gene: one synapse of the evolved network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConnGene {
    /// Stable key of this gene.
    pub key: ConnKey,
    /// Synaptic weight.
    pub weight: f64,
    /// Disabled connections stay in the genome (and may be re-enabled by
    /// crossover) but do not contribute to evaluation.
    pub enabled: bool,
}

impl ConnGene {
    /// Creates an enabled connection with the given weight.
    pub fn new(src: NodeId, dst: NodeId, weight: f64) -> Self {
        ConnGene {
            key: ConnKey::new(src, dst),
            weight,
            enabled: true,
        }
    }

    /// The default connection the hardware Add-Gene engine inserts:
    /// unit weight, enabled.
    pub fn with_default_attributes(src: NodeId, dst: NodeId) -> Self {
        ConnGene::new(src, dst, 1.0)
    }

    /// Distance between attribute sets of two connection genes (see
    /// [`NodeGene::attribute_distance`]).
    pub fn attribute_distance(&self, other: &ConnGene) -> f64 {
        let mut d = (self.weight - other.weight).abs();
        if self.enabled != other.enabled {
            d += 1.0;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_type_codes_roundtrip() {
        for t in [NodeType::Hidden, NodeType::Input, NodeType::Output] {
            assert_eq!(NodeType::from_code(t.to_code()), t);
        }
        // Reserved pattern decodes as hidden.
        assert_eq!(NodeType::from_code(0b11), NodeType::Hidden);
    }

    #[test]
    fn constructors_set_types() {
        assert_eq!(NodeGene::input(NodeId(0)).node_type, NodeType::Input);
        assert_eq!(NodeGene::output(NodeId(1)).node_type, NodeType::Output);
        assert_eq!(NodeGene::hidden(NodeId(2)).node_type, NodeType::Hidden);
    }

    #[test]
    fn node_distance_counts_discrete_mismatch() {
        let a = NodeGene::hidden(NodeId(5));
        let mut b = a;
        assert_eq!(a.attribute_distance(&b), 0.0);
        b.bias = 1.5;
        assert!((a.attribute_distance(&b) - 1.5).abs() < 1e-12);
        b.activation = Activation::Relu;
        assert!((a.attribute_distance(&b) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn conn_distance() {
        let a = ConnGene::new(NodeId(0), NodeId(3), 1.0);
        let mut b = a;
        b.weight = -1.0;
        b.enabled = false;
        assert!((a.attribute_distance(&b) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn conn_key_ordering_is_lexicographic() {
        let a = ConnKey::new(NodeId(0), NodeId(5));
        let b = ConnKey::new(NodeId(1), NodeId(0));
        assert!(
            a < b,
            "keys sort by source first — the genome buffer layout"
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(ConnKey::new(NodeId(1), NodeId(2)).to_string(), "n1->n2");
    }
}
