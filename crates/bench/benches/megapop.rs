//! Megapopulation hot paths at `--pop 10_000` scale: the geometric-skip
//! attribute-mutation sweep (O(mutations) instead of O(genes)), capped
//! speciation over the flat representative arena, population packing into
//! a [`PopulationArena`], and the batched SoA activation kernel against
//! the scalar one. These are the paths the megapopulation refactor exists
//! for; the bench-regression gate keeps them from quietly sliding back to
//! per-gene costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genesys_neat::trace::OpCounters;
use genesys_neat::{
    BatchScratch, Genome, InnovationTracker, NeatConfig, Network, PopulationArena, Scratch,
    SpeciesId, SpeciesSet, XorWow,
};

const POP: usize = 10_000;

/// A structurally diverged megapopulation with fitness assigned — the
/// state the mutation and speciation sweeps start from.
fn megapopulation(pop: usize) -> (Vec<Genome>, NeatConfig) {
    let c = NeatConfig::builder(6, 2).pop_size(pop).build().unwrap();
    let mut rng = XorWow::seed_from_u64_value(42);
    let mut innov = InnovationTracker::new(c.first_hidden_id());
    let mut ops = OpCounters::new();
    let mut genomes: Vec<Genome> = (0..pop as u64)
        .map(|k| Genome::initial(k, &c, &mut rng))
        .collect();
    for (i, g) in genomes.iter_mut().enumerate() {
        if i % 5 == 0 {
            for _ in 0..3 {
                g.mutate_add_node(&mut innov, &mut rng, &mut ops);
                g.mutate_attributes(&c, &mut rng, &mut ops);
            }
        }
        g.set_fitness(((i * 37 + 11) % 29) as f64);
    }
    (genomes, c)
}

/// An evolved policy net for the activation kernels (4 in, 1 out, hidden
/// structure from a few add-node/add-conn rounds).
fn evolved_net() -> Network {
    let c = NeatConfig::builder(4, 1).build().unwrap();
    let mut rng = XorWow::seed_from_u64_value(11);
    let mut innov = InnovationTracker::new(c.first_hidden_id());
    let mut ops = OpCounters::new();
    let mut g = Genome::initial(0, &c, &mut rng);
    for _ in 0..5 {
        g.mutate_add_node(&mut innov, &mut rng, &mut ops);
        g.mutate_add_conn(&mut rng, &mut ops);
        g.mutate_attributes(&c, &mut rng, &mut ops);
    }
    Network::from_genome(&g).expect("mutated genome stays acyclic")
}

fn bench_megapop(c: &mut Criterion) {
    let mut group = c.benchmark_group("megapop");
    let (mut genomes, config) = megapopulation(POP);

    // Geometric-skip attribute mutation across the whole population.
    group.bench_with_input(BenchmarkId::new("mutate", POP), &POP, |b, _| {
        let mut rng = XorWow::seed_from_u64_value(7);
        let mut ops = OpCounters::new();
        b.iter(|| {
            for g in &mut genomes {
                g.mutate_attributes(&config, &mut rng, &mut ops);
            }
        });
    });

    // Capped speciation (representative cap 64) over the megapopulation.
    group.bench_with_input(BenchmarkId::new("speciate", POP), &POP, |b, _| {
        let mut species = SpeciesSet::new();
        species.speciate(&genomes, &config, 0);
        b.iter(|| {
            species.speciate(&genomes, &config, 1);
        });
    });

    // The same sweep with parent-species hints — the steady state of a
    // live run, where reproduction hints every child with its parents'
    // species. Hints are advisory (assignments stay bit-identical); the
    // entry measures the hint fast path plus signature pruning.
    group.bench_with_input(BenchmarkId::new("speciate_pruned", POP), &POP, |b, _| {
        let mut species = SpeciesSet::new();
        species.speciate(&genomes, &config, 0);
        let mut hints: Vec<Option<SpeciesId>> = vec![None; genomes.len()];
        for s in species.iter() {
            for &m in &s.members {
                hints[m] = Some(s.id);
            }
        }
        species.speciate_with_hints(&genomes, &config, 1, None, Some(&hints));
        let stats = species.scan_stats();
        let scanned = stats.exact + stats.pruned;
        eprintln!(
            "speciate_pruned/{POP}: exact {} pruned {} hint_hits {} (prune rate {:.1}%)",
            stats.exact,
            stats.pruned,
            stats.hint_hits,
            100.0 * stats.pruned as f64 / scanned.max(1) as f64
        );
        b.iter(|| {
            species.speciate_with_hints(&genomes, &config, 1, None, Some(&hints));
        });
    });

    // Packing every genome's gene clusters into the flat arena.
    group.bench_with_input(BenchmarkId::new("arena_pack", POP), &POP, |b, _| {
        let mut arena = PopulationArena::new();
        b.iter(|| {
            arena.pack(genomes.iter());
            arena.total_genes()
        });
    });

    // One policy net evaluated POP times: scalar kernel vs the batched
    // SoA kernel at 16 lanes. Identical arithmetic per lane — the batch
    // dimension is purely a throughput knob, so min times are directly
    // comparable.
    let net = evolved_net();
    let obs: Vec<f64> = (0..POP * 4).map(|i| (i % 97) as f64 / 97.0).collect();

    group.bench_with_input(BenchmarkId::new("activate_scalar", POP), &POP, |b, _| {
        let mut scratch = Scratch::new();
        let mut out = [0.0f64; 1];
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..POP {
                net.activate_into(&mut scratch, &obs[i * 4..(i + 1) * 4], &mut out);
                acc += out[0];
            }
            acc
        });
    });

    const BATCH: usize = 16;
    group.bench_with_input(BenchmarkId::new("activate_batch16", POP), &POP, |b, _| {
        let mut scratch = BatchScratch::new();
        let mut inputs = vec![0.0f64; 4 * BATCH];
        let mut outputs = vec![0.0f64; BATCH];
        b.iter(|| {
            let mut acc = 0.0;
            for chunk in 0..POP / BATCH {
                // Transpose the chunk's observations into the SoA block
                // (input index outer, lane inner).
                for lane in 0..BATCH {
                    let base = (chunk * BATCH + lane) * 4;
                    for i in 0..4 {
                        inputs[i * BATCH + lane] = obs[base + i];
                    }
                }
                net.activate_batch_into(&mut scratch, BATCH, &inputs, &mut outputs);
                acc += outputs.iter().sum::<f64>();
            }
            acc
        });
    });

    group.finish();
}

criterion_group!(benches, bench_megapop);
criterion_main!(benches);
