//! Innovation tracking: global node-id assignment.
//!
//! NEAT aligns genes across genomes by *key* (node id, or `(src, dst)` for
//! connections). For this to be meaningful, the same structural innovation
//! must receive the same key everywhere in the population. The tracker hands
//! out fresh node ids from a global counter and memoizes "split of
//! connection `s->d`" so that two genomes splitting the same connection in
//! the same generation receive the same hidden-node id — keeping them
//! compatible for speciation and crossover, exactly as `neat-python` does.

use crate::gene::{ConnKey, NodeId};
use std::collections::HashMap;

/// Hands out node ids and memoizes per-generation structural innovations.
#[derive(Debug, Clone)]
pub struct InnovationTracker {
    next_node: u32,
    split_memo: HashMap<ConnKey, NodeId>,
}

impl InnovationTracker {
    /// Creates a tracker whose first fresh node id is `first_hidden_id`
    /// (ids below that belong to the fixed input/output interface).
    pub fn new(first_hidden_id: u32) -> Self {
        InnovationTracker {
            next_node: first_hidden_id,
            split_memo: HashMap::new(),
        }
    }

    /// Returns the node id for splitting connection `key`, reusing the id
    /// if the same split already happened this generation.
    pub fn node_for_split(&mut self, key: ConnKey) -> NodeId {
        if let Some(&id) = self.split_memo.get(&key) {
            return id;
        }
        let id = self.fresh_node();
        self.split_memo.insert(key, id);
        id
    }

    /// Unconditionally allocates a fresh node id.
    pub fn fresh_node(&mut self) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        id
    }

    /// Highest node id handed out so far plus one.
    pub fn next_node_id(&self) -> u32 {
        self.next_node
    }

    /// Clears the split memo; call at each generation boundary so innovation
    /// reuse stays within a generation (the `neat-python` convention).
    pub fn begin_generation(&mut self) {
        self.split_memo.clear();
    }

    /// Ensures the counter is beyond `id` (used when genomes are imported
    /// from outside, e.g. decoded from the hardware genome buffer).
    pub fn witness(&mut self, id: NodeId) {
        if id.0 >= self.next_node {
            self.next_node = id.0 + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ids_are_sequential() {
        let mut t = InnovationTracker::new(10);
        assert_eq!(t.fresh_node(), NodeId(10));
        assert_eq!(t.fresh_node(), NodeId(11));
        assert_eq!(t.next_node_id(), 12);
    }

    #[test]
    fn same_split_same_generation_reuses_id() {
        let mut t = InnovationTracker::new(5);
        let key = ConnKey::new(NodeId(0), NodeId(4));
        let a = t.node_for_split(key);
        let b = t.node_for_split(key);
        assert_eq!(a, b);
    }

    #[test]
    fn split_memo_resets_each_generation() {
        let mut t = InnovationTracker::new(5);
        let key = ConnKey::new(NodeId(1), NodeId(4));
        let a = t.node_for_split(key);
        t.begin_generation();
        let b = t.node_for_split(key);
        assert_ne!(a, b, "memo must clear at the generation boundary");
    }

    #[test]
    fn witness_advances_counter() {
        let mut t = InnovationTracker::new(3);
        t.witness(NodeId(100));
        assert_eq!(t.fresh_node(), NodeId(101));
        t.witness(NodeId(50)); // lower id: no effect
        assert_eq!(t.fresh_node(), NodeId(102));
    }
}
