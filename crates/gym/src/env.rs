//! The environment abstraction (Table I of the paper).
//!
//! Every environment exposes an observation vector, accepts the **raw
//! output vector of a NEAT network** as its action (each environment
//! performs its own decoding — binary threshold, n-way quantization, or
//! continuous torques — exactly as Table I describes the action spaces),
//! and returns a scalar reward stream that the CPU thread of the SoC turns
//! into fitness.

use std::fmt;

/// Result of one environment step.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// Next observation.
    pub observation: Vec<f64>,
    /// Reward earned by the action.
    pub reward: f64,
    /// True when the episode ended (success, failure or time limit).
    pub done: bool,
}

/// Kind of action interface, for documentation and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionKind {
    /// `n`-way discrete choice decoded from the network outputs.
    Discrete(usize),
    /// `n` continuous torques/controls.
    Continuous(usize),
}

impl fmt::Display for ActionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionKind::Discrete(n) => write!(f, "discrete({n})"),
            ActionKind::Continuous(n) => write!(f, "continuous({n})"),
        }
    }
}

/// A reinforcement-learning environment in the OpenAI-gym mould.
///
/// Implementations are deterministic functions of their construction seed,
/// which is what lets every experiment in this reproduction be replayed
/// bit-for-bit.
///
/// The primitive operations are the **buffer-writing** variants
/// [`Environment::reset_into`] and [`Environment::step_into`]: they write
/// the observation into a caller-owned slice and allocate nothing, which
/// is what keeps the steady-state rollout loop (`crate::episode_rollout`)
/// free of per-step heap traffic — the software analogue of EvE/ADAM
/// executing out of fixed buffers. The allocating [`Environment::reset`] /
/// [`Environment::step`] are provided convenience wrappers and produce
/// bit-identical trajectories.
pub trait Environment {
    /// Stable environment name (matches the paper's workload labels).
    fn name(&self) -> &'static str;

    /// Dimension of the observation vector.
    fn observation_dim(&self) -> usize;

    /// Number of network outputs the environment expects (Table I's
    /// "Action" column: e.g. one binary value for CartPole, four torques
    /// for the walker).
    fn action_dim(&self) -> usize;

    /// Action interface kind (for reporting).
    fn action_kind(&self) -> ActionKind;

    /// Resets to a (seed-derived) initial state and writes the first
    /// observation into `obs`.
    ///
    /// # Panics
    ///
    /// Panics if `obs.len() != self.observation_dim()`.
    fn reset_into(&mut self, obs: &mut [f64]);

    /// Advances one timestep using the raw network outputs, writing the
    /// next observation into `obs` and returning `(reward, done)`.
    ///
    /// # Panics
    ///
    /// Panics if `obs.len() != self.observation_dim()`; implementations
    /// may panic if `action.len() != self.action_dim()`.
    fn step_into(&mut self, action: &[f64], obs: &mut [f64]) -> (f64, bool);

    /// Resets to a (seed-derived) initial state and returns the first
    /// observation. Allocating wrapper over [`Environment::reset_into`].
    fn reset(&mut self) -> Vec<f64> {
        let mut obs = vec![0.0; self.observation_dim()];
        self.reset_into(&mut obs);
        obs
    }

    /// Advances one timestep using the raw network outputs. Allocating
    /// wrapper over [`Environment::step_into`].
    ///
    /// # Panics
    ///
    /// Implementations may panic if `action.len() != self.action_dim()`.
    fn step(&mut self, action: &[f64]) -> Step {
        let mut obs = vec![0.0; self.observation_dim()];
        let (reward, done) = self.step_into(action, &mut obs);
        Step {
            observation: obs,
            reward,
            done,
        }
    }

    /// Episode step limit.
    fn max_steps(&self) -> usize;
}

/// Decodes a single sigmoid-range output into an `n`-way discrete choice by
/// uniform quantization of `[0, 1]` — Table I's "one integer, less than n"
/// action encoding.
pub fn quantize_action(output: f64, n: usize) -> usize {
    debug_assert!(n > 0);
    let clamped = output.clamp(0.0, 1.0);
    ((clamped * n as f64) as usize).min(n - 1)
}

/// Decodes a single output into a binary choice (CartPole's "one binary
/// value").
pub fn binary_action(output: f64) -> bool {
    output > 0.5
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_covers_all_bins() {
        assert_eq!(quantize_action(0.0, 3), 0);
        assert_eq!(quantize_action(0.4, 3), 1);
        assert_eq!(quantize_action(0.99, 3), 2);
        assert_eq!(quantize_action(1.0, 3), 2, "upper edge maps to last bin");
        assert_eq!(quantize_action(-5.0, 3), 0, "clamped below");
        assert_eq!(quantize_action(5.0, 3), 2, "clamped above");
    }

    #[test]
    fn quantize_single_bin() {
        for v in [-1.0, 0.0, 0.5, 1.0, 2.0] {
            assert_eq!(quantize_action(v, 1), 0);
        }
    }

    #[test]
    fn binary_threshold() {
        assert!(!binary_action(0.5));
        assert!(binary_action(0.51));
        assert!(!binary_action(0.2));
    }

    #[test]
    fn action_kind_display() {
        assert_eq!(ActionKind::Discrete(4).to_string(), "discrete(4)");
        assert_eq!(ActionKind::Continuous(6).to_string(), "continuous(6)");
    }
}
