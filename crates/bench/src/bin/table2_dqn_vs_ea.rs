//! Table II: comparing DQN with the EA on an Atari workload.
//!
//! The EA column is *measured* from a `genesys-neat` run on the Alien RAM
//! machine; the DQN column carries the paper's published characterization.
//!
//! Usage: `table2_dqn_vs_ea [--pop N] [--generations N] [--seed N]`

use genesys_bench::{print_table, run_workload, ExperimentArgs};
use genesys_gym::EnvKind;
use genesys_platforms::{table2, DqnSpec};

fn main() {
    let args = ExperimentArgs::parse();
    let pop = args.pop_or(150);
    let generations = args.generations_or(5);

    eprintln!("profiling Alien-ram ({generations} generations, pop {pop})...");
    let run = run_workload(EnvKind::Alien, generations, args.base_seed(7), Some(pop));
    let profile = run.profile();
    let rows: Vec<Vec<String>> = table2(&DqnSpec::atari(), &profile)
        .into_iter()
        .map(|r| vec![r.dimension.to_string(), r.dqn, r.ea])
        .collect();
    print_table(
        "Table II: DQN vs EA (both running ATARI)",
        &["", "DQN", "EA"],
        &rows,
    );

    println!(
        "\nMeasured EA profile: {} env steps/gen, {} MACs/gen, {} evo ops/gen, {} genes",
        profile.env_steps, profile.inference_macs, profile.evolution_ops, profile.total_genes
    );
    assert!(
        profile.genesys_footprint_bytes() < 1_000_000,
        "paper claim: the entire generation fits in <1 MB"
    );
    println!(
        "Claim check passed: generation footprint {} KB < 1 MB.",
        profile.genesys_footprint_bytes() / 1024
    );
}
