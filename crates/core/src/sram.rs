//! The genome buffer: a multi-banked on-chip SRAM backed by DRAM.
//!
//! The paper allocates **1.5 MB in 48 banks of depth 4096** — with a 64-bit
//! word (one gene) that is exactly `48 × 4096 × 8 B = 1.5 MB`. The banked
//! organization exists "to exploit the reuse of parents … as well as to
//! reduce conflict while feeding data to ADAM". This model tracks accesses,
//! bank conflicts, DRAM spill, and energy.

use std::fmt;

/// Geometry and energy parameters of the genome buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramConfig {
    /// Number of banks (paper: 48).
    pub banks: usize,
    /// Words per bank (paper: 4096).
    pub depth: usize,
    /// Energy per 64-bit read, picojoules.
    pub read_energy_pj: f64,
    /// Energy per 64-bit write, picojoules.
    pub write_energy_pj: f64,
    /// Energy per 64-bit DRAM access (spill traffic), picojoules.
    pub dram_energy_pj: f64,
}

impl Default for SramConfig {
    fn default() -> Self {
        SramConfig {
            banks: 48,
            depth: 4096,
            // 15 nm small-bank access energies; DRAM is ~2 orders costlier,
            // which is what makes the on-chip genome buffer the headline
            // energy win.
            read_energy_pj: 5.0,
            write_energy_pj: 5.5,
            dram_energy_pj: 640.0,
        }
    }
}

impl SramConfig {
    /// Total capacity in 64-bit words.
    pub fn capacity_words(&self) -> usize {
        self.banks * self.depth
    }

    /// Total capacity in bytes (paper: 1.5 MB with the default geometry).
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_words() * 8
    }
}

/// Access and energy counters for the genome buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SramStats {
    /// 64-bit words read from SRAM.
    pub reads: u64,
    /// 64-bit words written to SRAM.
    pub writes: u64,
    /// Words that spilled to DRAM because the generation exceeded capacity.
    pub dram_accesses: u64,
    /// Bank-conflict stall cycles (same-cycle accesses hashing to one bank).
    pub conflict_cycles: u64,
}

impl SramStats {
    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &SramStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.dram_accesses += other.dram_accesses;
        self.conflict_cycles += other.conflict_cycles;
    }
}

/// The genome buffer model.
///
/// This is an *accounting* model: the actual genome payloads live in
/// ordinary host memory (`Vec<u64>` images); the model decides whether a
/// given generation fits on-chip, charges energies, and tracks counters.
#[derive(Debug, Clone)]
pub struct GenomeBuffer {
    config: SramConfig,
    /// Words currently resident (the evaluated generation + children).
    resident_words: usize,
    stats: SramStats,
}

impl GenomeBuffer {
    /// Creates an empty buffer with the given geometry.
    pub fn new(config: SramConfig) -> Self {
        GenomeBuffer {
            config,
            resident_words: 0,
            stats: SramStats::default(),
        }
    }

    /// Geometry in use.
    pub fn config(&self) -> &SramConfig {
        &self.config
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &SramStats {
        &self.stats
    }

    /// Resets the counters (e.g. per-generation accounting).
    pub fn reset_stats(&mut self) {
        self.stats = SramStats::default();
    }

    /// Declares the resident working set for the current generation:
    /// `words` genes must be storable. Words beyond capacity will cost DRAM
    /// energy on every touch.
    pub fn set_resident(&mut self, words: usize) {
        self.resident_words = words;
    }

    /// Fraction of touches that overflow to DRAM for the declared working
    /// set (0 when everything fits, which the paper reports for its suite).
    pub fn spill_fraction(&self) -> f64 {
        if self.resident_words <= self.config.capacity_words() {
            0.0
        } else {
            let extra = self.resident_words - self.config.capacity_words();
            extra as f64 / self.resident_words as f64
        }
    }

    /// Records `n` gene reads, splitting them between SRAM and DRAM by the
    /// spill fraction.
    pub fn read_genes(&mut self, n: u64) {
        let spill = (n as f64 * self.spill_fraction()).round() as u64;
        self.stats.reads += n - spill;
        self.stats.dram_accesses += spill;
    }

    /// Records `n` gene writes.
    pub fn write_genes(&mut self, n: u64) {
        let spill = (n as f64 * self.spill_fraction()).round() as u64;
        self.stats.writes += n - spill;
        self.stats.dram_accesses += spill;
    }

    /// Models one access cycle touching `addresses` (gene indices): counts
    /// a conflict stall for every extra access landing in an already-busy
    /// bank. Interleaving is word-round-robin across banks.
    pub fn access_cycle(&mut self, addresses: &[usize]) {
        let mut busy = vec![false; self.config.banks];
        let mut conflicts = 0u64;
        for &a in addresses {
            let bank = a % self.config.banks;
            if busy[bank] {
                conflicts += 1;
            } else {
                busy[bank] = true;
            }
        }
        self.stats.conflict_cycles += conflicts;
        self.read_genes(addresses.len() as u64);
    }

    /// Total buffer energy in microjoules for the accumulated counters.
    pub fn energy_uj(&self) -> f64 {
        (self.stats.reads as f64 * self.config.read_energy_pj
            + self.stats.writes as f64 * self.config.write_energy_pj
            + self.stats.dram_accesses as f64 * self.config.dram_energy_pj)
            / 1e6
    }
}

impl fmt::Display for SramStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads {} writes {} dram {} conflicts {}",
            self.reads, self.writes, self.dram_accesses, self.conflict_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_is_the_papers() {
        let c = SramConfig::default();
        assert_eq!(c.banks, 48);
        assert_eq!(c.depth, 4096);
        assert_eq!(c.capacity_bytes(), 1_572_864, "exactly 1.5 MB");
    }

    #[test]
    fn no_spill_when_generation_fits() {
        let mut buf = GenomeBuffer::new(SramConfig::default());
        buf.set_resident(100_000); // < 196608 words
        buf.read_genes(5000);
        assert_eq!(buf.stats().reads, 5000);
        assert_eq!(buf.stats().dram_accesses, 0);
    }

    #[test]
    fn oversized_generation_spills_proportionally() {
        let mut buf = GenomeBuffer::new(SramConfig::default());
        let cap = buf.config().capacity_words();
        buf.set_resident(cap * 2); // half the touches spill
        buf.read_genes(1000);
        assert_eq!(buf.stats().dram_accesses, 500);
        assert_eq!(buf.stats().reads, 500);
    }

    #[test]
    fn energy_accounts_all_access_kinds() {
        let mut buf = GenomeBuffer::new(SramConfig::default());
        buf.set_resident(10);
        buf.read_genes(1_000_000);
        buf.write_genes(1_000_000);
        let uj = buf.energy_uj();
        assert!(
            (uj - (5.0 + 5.5)).abs() < 1e-9,
            "1M reads + 1M writes = 10.5 uJ"
        );
    }

    #[test]
    fn dram_dominates_when_spilling() {
        let mut a = GenomeBuffer::new(SramConfig::default());
        a.set_resident(10);
        a.read_genes(1000);
        let mut b = GenomeBuffer::new(SramConfig::default());
        b.set_resident(b.config().capacity_words() * 10);
        b.read_genes(1000);
        assert!(b.energy_uj() > 10.0 * a.energy_uj());
    }

    #[test]
    fn bank_conflicts_counted() {
        let mut buf = GenomeBuffer::new(SramConfig {
            banks: 4,
            ..SramConfig::default()
        });
        buf.set_resident(100);
        // 4 accesses to bank 0 (addresses ≡ 0 mod 4): 3 conflicts.
        buf.access_cycle(&[0, 4, 8, 12]);
        assert_eq!(buf.stats().conflict_cycles, 3);
        // Perfectly spread accesses: no conflicts.
        buf.reset_stats();
        buf.access_cycle(&[0, 1, 2, 3]);
        assert_eq!(buf.stats().conflict_cycles, 0);
    }

    #[test]
    fn stats_merge() {
        let mut a = SramStats {
            reads: 1,
            writes: 2,
            dram_accesses: 3,
            conflict_cycles: 4,
        };
        a.merge(&a.clone());
        assert_eq!(a.reads, 2);
        assert_eq!(a.conflict_cycles, 8);
    }
}
