//! Continuous learning on a 128-byte RAM game: the paper's Atari-class
//! workload. Genomes observe the raw RAM of the Asterix machine and learn
//! to chase tankards and dodge lyres — while we watch the gene count grow
//! (the Fig 4(b) effect that motivates gene-level parallelism).
//!
//! This example shows the session API's **closure workload** path: any
//! `Fn(EvalContext, &Network) -> f64` is an evaluator, as long as its
//! randomness derives from the context (here: the episode seed). The
//! observer also shows the **owned event** surface: `event.to_owned()`
//! detaches a generation record from the borrowed view, so history can
//! outlive the run loop (this is the representation the session server
//! buffers and ships over the wire).
//!
//! Run with: `cargo run --release --example atari_ram`

use genesys::gym::{rollout, AsterixRam, EnvKind};
use genesys::neat::{EvalContext, Network, OwnedGenerationEvent, Session};
use std::sync::{Arc, Mutex};

fn main() {
    let mut config = EnvKind::Asterix.neat_config();
    config.pop_size = 64; // paper uses 150; smaller here for a fast demo

    let history: Arc<Mutex<Vec<OwnedGenerationEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&history);
    let mut session = Session::builder(config, 99)
        .expect("valid config")
        .workload(|ctx: EvalContext, net: &Network| {
            // Deterministic custom workload: seed from the context, cap
            // the episode at 600 machine steps for demo speed.
            let mut env = AsterixRam::from_seed(ctx.seed()).with_max_steps(600);
            rollout(net, &mut env, 1)
        })
        .threads(4)
        .observe(move |event| {
            let s = event.stats;
            println!(
                "{:>3} | {:>10.0} | {:>10.1} | {:>11} | {:>7} | {:>7}",
                s.generation,
                s.max_fitness,
                s.mean_fitness,
                s.total_genes,
                s.num_species,
                s.ops.total(),
            );
            sink.lock().unwrap().push(event.to_owned());
        })
        .build();

    println!("evolving Asterix-ram (128 RAM-byte observations, 5 buttons)...\n");
    println!("gen | best score | mean score | genes (pop) | species | evo ops");
    session.run(10);

    let best = session.best_genome().expect("evaluated");
    println!(
        "\nbest genome: {} nodes, {} connections, {} bytes in the 64-bit gene encoding",
        best.num_nodes(),
        best.num_conns(),
        best.memory_bytes(),
    );

    // The owned history outlives the session's borrow: replay the Fig 4(b)
    // gene-growth story from the detached records.
    let history = history.lock().unwrap();
    let (first, last) = (history.first().expect("ran"), history.last().expect("ran"));
    println!(
        "gene growth over {} generations: {} -> {} genes in the population",
        history.len(),
        first.stats.total_genes,
        last.stats.total_genes,
    );
    println!("note the op counts: this is the workload class where the paper's");
    println!("gene-level parallelism (256 EvE PEs) pays off.");
}
