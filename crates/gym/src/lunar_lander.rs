//! LunarLander: soft-land a module on a pad by firing thrusters.
//!
//! Reduced-order substitute for gym's Box2D `LunarLander-v2` (the paper
//! only consumes its observation/action interface and reward shape):
//! a 2-D rigid body with a main engine and two lateral thrusters, gym's
//! 8-component observation `[x, y, vx, vy, θ, θ̇, leg1, leg2]`, four
//! discrete actions (nothing / left / main / right), and gym's
//! potential-based reward shaping with ±100 terminal bonuses and fuel
//! costs. Dynamics constants are chosen to give comparable episode lengths
//! (hundreds of steps) and the same qualitative difficulty.

use crate::env::{quantize_action, ActionKind, Environment};
use genesys_neat::XorWow;

const GRAVITY: f64 = -0.40; // scaled units per step²
const MAIN_POWER: f64 = 0.65;
const SIDE_POWER: f64 = 0.06;
const DT: f64 = 0.12;
const PAD_HALF_WIDTH: f64 = 0.2;
const MAX_LANDING_SPEED: f64 = 0.55;
const MAX_LANDING_TILT: f64 = 0.35;

/// The lunar lander environment.
#[derive(Debug, Clone)]
pub struct LunarLander {
    rng: XorWow,
    x: f64,
    y: f64,
    vx: f64,
    vy: f64,
    angle: f64,
    vangle: f64,
    left_leg: bool,
    right_leg: bool,
    steps: usize,
    done: bool,
    prev_shaping: Option<f64>,
}

impl LunarLander {
    /// Episode step limit (matches gym's 1000).
    pub const MAX_STEPS: usize = 1000;

    /// Creates a lander seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        let mut env = LunarLander {
            rng: XorWow::seed_from_u64_value(seed ^ 0x11BA_DA00),
            x: 0.0,
            y: 0.0,
            vx: 0.0,
            vy: 0.0,
            angle: 0.0,
            vangle: 0.0,
            left_leg: false,
            right_leg: false,
            steps: 0,
            done: false,
            prev_shaping: None,
        };
        env.reset();
        env
    }

    fn write_observation(&self, obs: &mut [f64]) {
        obs.copy_from_slice(&[
            self.x,
            self.y,
            self.vx,
            self.vy,
            self.angle,
            self.vangle,
            if self.left_leg { 1.0 } else { 0.0 },
            if self.right_leg { 1.0 } else { 0.0 },
        ]);
    }

    /// Gym's shaping potential: closer/slower/straighter is better.
    fn shaping(&self) -> f64 {
        -100.0 * (self.x * self.x + self.y * self.y).sqrt()
            - 100.0 * (self.vx * self.vx + self.vy * self.vy).sqrt()
            - 100.0 * self.angle.abs()
            + 10.0 * (self.left_leg as i32 + self.right_leg as i32) as f64
    }

    /// Was the last terminal state a successful landing?
    pub fn landed(&self) -> bool {
        self.done
            && self.y <= 0.0
            && self.x.abs() <= PAD_HALF_WIDTH
            && self.vx.hypot(self.vy) <= MAX_LANDING_SPEED
            && self.angle.abs() <= MAX_LANDING_TILT
    }
}

impl Environment for LunarLander {
    fn name(&self) -> &'static str {
        "LunarLander_v2"
    }

    fn observation_dim(&self) -> usize {
        8
    }

    fn action_dim(&self) -> usize {
        1
    }

    fn action_kind(&self) -> ActionKind {
        ActionKind::Discrete(4)
    }

    fn reset_into(&mut self, obs: &mut [f64]) {
        self.x = self.rng.uniform(-0.3, 0.3);
        self.y = 1.4;
        self.vx = self.rng.uniform(-0.1, 0.1);
        self.vy = self.rng.uniform(-0.1, 0.0);
        self.angle = self.rng.uniform(-0.1, 0.1);
        self.vangle = self.rng.uniform(-0.05, 0.05);
        self.left_leg = false;
        self.right_leg = false;
        self.steps = 0;
        self.done = false;
        self.prev_shaping = None;
        self.write_observation(obs);
    }

    fn step_into(&mut self, action: &[f64], obs: &mut [f64]) -> (f64, bool) {
        assert_eq!(action.len(), 1, "LunarLander takes one output");
        if self.done {
            self.write_observation(obs);
            return (0.0, true);
        }
        let a = quantize_action(action[0], 4); // 0 none, 1 left, 2 main, 3 right
        let mut fuel_cost = 0.0;
        let mut ax = 0.0;
        let mut ay = GRAVITY;
        match a {
            1 => {
                // left thruster: pushes right and spins counter-clockwise
                ax += SIDE_POWER * self.angle.cos();
                self.vangle += SIDE_POWER * 0.8;
                fuel_cost = 0.03;
            }
            2 => {
                // main engine: thrust along the body axis
                ax += -MAIN_POWER * self.angle.sin();
                ay += MAIN_POWER * self.angle.cos();
                fuel_cost = 0.30;
            }
            3 => {
                ax -= SIDE_POWER * self.angle.cos();
                self.vangle -= SIDE_POWER * 0.8;
                fuel_cost = 0.03;
            }
            _ => {}
        }
        self.vx += ax * DT;
        self.vy += ay * DT;
        self.x += self.vx * DT;
        self.y += self.vy * DT;
        self.angle += self.vangle * DT;
        // Weak aerodynamic-like damping keeps tumbling bounded.
        self.vangle *= 0.99;
        self.steps += 1;

        let mut reward = -fuel_cost;
        let shaping = self.shaping();
        if let Some(prev) = self.prev_shaping {
            reward += shaping - prev;
        }
        self.prev_shaping = Some(shaping);

        if self.y <= 0.0 {
            self.y = 0.0;
            self.left_leg = true;
            self.right_leg = true;
            self.done = true;
            let soft =
                self.vx.hypot(self.vy) <= MAX_LANDING_SPEED && self.angle.abs() <= MAX_LANDING_TILT;
            let on_pad = self.x.abs() <= PAD_HALF_WIDTH;
            reward += if soft && on_pad {
                100.0
            } else if soft {
                20.0 // soft landing off-pad: partial credit
            } else {
                -100.0 // crash
            };
        } else if self.x.abs() > 1.5 || self.y > 2.5 {
            self.done = true;
            reward += -100.0; // flew away
        } else if self.steps >= Self::MAX_STEPS {
            self.done = true;
        }

        self.write_observation(obs);
        (reward, self.done)
    }

    fn max_steps(&self) -> usize {
        Self::MAX_STEPS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_policy(seed: u64, policy: impl Fn(&[f64]) -> f64) -> (f64, bool) {
        let mut env = LunarLander::new(seed);
        let mut obs = env.reset();
        let mut total = 0.0;
        loop {
            let s = env.step(&[policy(&obs)]);
            total += s.reward;
            obs = s.observation;
            if s.done {
                break;
            }
        }
        (total, env.landed())
    }

    #[test]
    fn observation_is_eight_floats() {
        let mut env = LunarLander::new(1);
        assert_eq!(env.reset().len(), 8);
    }

    #[test]
    fn free_fall_crashes() {
        let (total, landed) = run_policy(2, |_| 0.1); // action 0: do nothing
        assert!(!landed);
        assert!(total < 0.0, "crash must be penalized, got {total}");
    }

    #[test]
    fn braking_policy_beats_free_fall() {
        // Fire main engine when descending fast: crude but better.
        let (fall, _) = run_policy(3, |_| 0.1);
        let (brake, _) = run_policy(3, |obs| if obs[3] < -0.5 { 0.6 } else { 0.1 });
        assert!(brake > fall, "braking {brake} should beat free fall {fall}");
    }

    #[test]
    fn legs_latch_on_touchdown() {
        let mut env = LunarLander::new(4);
        env.reset();
        let mut last;
        loop {
            let s = env.step(&[0.1]);
            last = s.observation.clone();
            if s.done {
                break;
            }
        }
        if last[1] <= 0.0 {
            assert_eq!(last[6], 1.0);
            assert_eq!(last[7], 1.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = LunarLander::new(5);
        let mut b = LunarLander::new(5);
        a.reset();
        b.reset();
        for _ in 0..100 {
            assert_eq!(a.step(&[0.6]), b.step(&[0.6]));
        }
    }

    #[test]
    fn episode_terminates() {
        let mut env = LunarLander::new(6);
        env.reset();
        let mut steps = 0;
        while !env.step(&[0.35]).done {
            steps += 1;
            assert!(steps <= LunarLander::MAX_STEPS + 1);
        }
    }
}
