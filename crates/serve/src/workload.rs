//! Wire-nameable workloads.
//!
//! A wire request cannot carry an arbitrary `Evaluator` — closures do not
//! serialize. [`WorkloadSpec`] is the set of workloads a client can name
//! over the protocol; [`WorkloadSpec::build`] instantiates the matching
//! [`ServeWorkload`], which the server hands to the session. Each spec
//! honours the determinism contract (`genesys_neat::session`): every
//! random choice derives from the [`EvalContext`], so a server-mediated
//! run is bit-identical to a direct [`genesys_neat::Session`] run with
//! the same spec, seed and config — the property the CI smoke job and
//! `serve_loadtest` assert byte-for-byte.

use crate::error::{FrameError, ServeError};
use crate::protocol::{Reader, Writer};
use genesys_gym::{DriftingEvaluator, EnvKind, EpisodeEvaluator};
use genesys_neat::{EvalContext, Evaluation, Evaluator, Network};

/// A serializable workload description — what the `submit` and `resume`
/// verbs carry instead of an `Evaluator` object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadSpec {
    /// A synthetic closed-form fitness: cheap, allocation-light, fully
    /// deterministic — the load-test workload (`serve_loadtest` drives
    /// hundreds of sessions of it).
    Synthetic,
    /// Episode rollouts in one of the Table I environments
    /// (`EpisodeEvaluator`).
    Env {
        /// The environment.
        kind: EnvKind,
        /// Episodes averaged per evaluation (≥ 1).
        episodes: u32,
        /// Lockstep lanes for multi-episode evaluations (≥ 1; see
        /// `EpisodeEvaluator::batch` for the seeding trade).
        batch: u32,
    },
    /// The nonstationary drifting-CartPole workload
    /// (`DriftingEvaluator`); its drift phase rides in the session's
    /// `workload_state` and survives eviction.
    Drifting {
        /// World seed of the drift schedule.
        world_seed: u64,
        /// Episodes per regime.
        period: u64,
        /// Episodes consumed per generation (normally the population
        /// size).
        episodes_per_generation: u64,
    },
}

/// Stable wire code of an [`EnvKind`] (never renumbered; new kinds take
/// new codes).
fn env_code(kind: EnvKind) -> u16 {
    match kind {
        EnvKind::CartPole => 0,
        EnvKind::MountainCar => 1,
        EnvKind::Acrobot => 2,
        EnvKind::LunarLander => 3,
        EnvKind::Bipedal => 4,
        EnvKind::AirRaid => 5,
        EnvKind::Alien => 6,
        EnvKind::Amidar => 7,
        EnvKind::Asterix => 8,
    }
}

fn env_from_code(code: u16) -> Option<EnvKind> {
    Some(match code {
        0 => EnvKind::CartPole,
        1 => EnvKind::MountainCar,
        2 => EnvKind::Acrobot,
        3 => EnvKind::LunarLander,
        4 => EnvKind::Bipedal,
        5 => EnvKind::AirRaid,
        6 => EnvKind::Alien,
        7 => EnvKind::Amidar,
        8 => EnvKind::Asterix,
        _ => return None,
    })
}

impl WorkloadSpec {
    pub(crate) fn encode(&self, w: &mut Writer) {
        match *self {
            WorkloadSpec::Synthetic => w.put_u16(0),
            WorkloadSpec::Env {
                kind,
                episodes,
                batch,
            } => {
                w.put_u16(1);
                w.put_u16(env_code(kind));
                w.put_u32(episodes);
                w.put_u32(batch);
            }
            WorkloadSpec::Drifting {
                world_seed,
                period,
                episodes_per_generation,
            } => {
                w.put_u16(2);
                w.put_u64(world_seed);
                w.put_u64(period);
                w.put_u64(episodes_per_generation);
            }
        }
    }

    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<WorkloadSpec, ServeError> {
        Ok(match r.take_u16()? {
            0 => WorkloadSpec::Synthetic,
            1 => {
                let kind = env_from_code(r.take_u16()?)
                    .ok_or(ServeError::Frame(FrameError::BadPayload("env kind code")))?;
                let episodes = r.take_u32()?;
                let batch = r.take_u32()?;
                // `EpisodeEvaluator` asserts both ≥ 1; a malformed frame
                // must be a typed error, never a panic.
                if episodes == 0 || batch == 0 {
                    return Err(ServeError::Frame(FrameError::BadPayload(
                        "zero episodes or batch",
                    )));
                }
                WorkloadSpec::Env {
                    kind,
                    episodes,
                    batch,
                }
            }
            2 => WorkloadSpec::Drifting {
                world_seed: r.take_u64()?,
                period: r.take_u64()?,
                episodes_per_generation: r.take_u64()?,
            },
            _ => {
                return Err(ServeError::Frame(FrameError::BadPayload(
                    "workload spec tag",
                )))
            }
        })
    }

    /// Instantiates the evaluator this spec names. Each call builds a
    /// fresh evaluator; per-worker scratch pools are rebuilt lazily, so
    /// rehydrating an evicted session costs no more than its first
    /// evaluation did.
    pub fn build(&self) -> ServeWorkload {
        match *self {
            WorkloadSpec::Synthetic => ServeWorkload::Synthetic,
            WorkloadSpec::Env {
                kind,
                episodes,
                batch,
            } => ServeWorkload::Episode(
                EpisodeEvaluator::new(kind)
                    .episodes(episodes as usize)
                    .batch(batch as usize),
            ),
            WorkloadSpec::Drifting {
                world_seed,
                period,
                episodes_per_generation,
            } => ServeWorkload::Drifting(DriftingEvaluator::new(
                world_seed,
                period,
                episodes_per_generation,
            )),
        }
    }
}

/// The evaluator behind a served session: the instantiation of a
/// [`WorkloadSpec`]. Public so direct `Session` runs can use the exact
/// same workload when asserting server-vs-direct bit-identity.
#[derive(Debug)]
pub enum ServeWorkload {
    /// See [`WorkloadSpec::Synthetic`].
    Synthetic,
    /// See [`WorkloadSpec::Env`].
    Episode(EpisodeEvaluator),
    /// See [`WorkloadSpec::Drifting`].
    Drifting(DriftingEvaluator),
}

/// The synthetic fitness: a pure function of `(ctx.seed(), network)`.
/// Exercises real inference (the network is activated on a seed-derived
/// input vector) without environment stepping, so load tests measure the
/// serving layer, not CartPole.
fn synthetic_fitness(ctx: EvalContext, net: &Network) -> f64 {
    let seed = ctx.seed();
    let inputs: Vec<f64> = (0..net.num_inputs())
        .map(|i| {
            // Two rotations of the seed per input keep lanes distinct.
            let s = seed.rotate_left((2 * i % 63) as u32);
            (s % 1009) as f64 / 1009.0
        })
        .collect();
    net.activate(&inputs).iter().map(|o| o.tanh()).sum()
}

impl Evaluator for ServeWorkload {
    fn evaluate(&self, ctx: EvalContext, net: &Network) -> Evaluation {
        match self {
            ServeWorkload::Synthetic => Evaluation {
                fitness: synthetic_fitness(ctx, net),
                env_steps: 0,
            },
            ServeWorkload::Episode(e) => e.evaluate(ctx, net),
            ServeWorkload::Drifting(d) => d.evaluate(ctx, net),
        }
    }

    fn state(&self) -> u64 {
        match self {
            ServeWorkload::Synthetic | ServeWorkload::Episode(_) => 0,
            ServeWorkload::Drifting(d) => d.state(),
        }
    }

    fn restore_state(&mut self, state: u64) {
        if let ServeWorkload::Drifting(d) = self {
            d.restore_state(state);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_codes_roundtrip_and_are_stable() {
        for (i, kind) in EnvKind::ALL.into_iter().enumerate() {
            assert_eq!(env_code(kind), i as u16, "codes are positional in ALL");
            assert_eq!(env_from_code(i as u16), Some(kind));
        }
        assert_eq!(env_from_code(EnvKind::ALL.len() as u16), None);
    }

    #[test]
    fn synthetic_fitness_is_a_pure_function_of_context() {
        // Nonzero weights, otherwise the net ignores its inputs and every
        // context scores the same.
        let config = genesys_neat::NeatConfig::builder(3, 2)
            .pop_size(4)
            .initial_weights(genesys_neat::InitialWeights::Uniform { lo: -1.0, hi: 1.0 })
            .build()
            .unwrap();
        let mut rng = genesys_neat::XorWow::seed_from_u64_value(1);
        let genome = genesys_neat::Genome::initial(0, &config, &mut rng);
        let net = Network::from_genome(&genome).unwrap();
        let ctx = EvalContext {
            base_seed: 5,
            generation: 2,
            index: 3,
        };
        let w = WorkloadSpec::Synthetic.build();
        let a = w.evaluate(ctx, &net);
        let b = w.evaluate(ctx, &net);
        assert_eq!(a, b);
        let other = w.evaluate(EvalContext { index: 4, ..ctx }, &net);
        assert_ne!(a.fitness, other.fitness);
    }

    #[test]
    fn drifting_state_rides_through_the_serve_workload() {
        let mut w = WorkloadSpec::Drifting {
            world_seed: 9,
            period: 3,
            episodes_per_generation: 8,
        }
        .build();
        assert_eq!(w.state(), 0);
        w.restore_state(24);
        assert_eq!(w.state(), 24);
        let mut synthetic = WorkloadSpec::Synthetic.build();
        synthetic.restore_state(7);
        assert_eq!(synthetic.state(), 0, "stateless workloads ignore phase");
    }
}
