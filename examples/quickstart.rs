//! Quickstart: evolve a CartPole controller with software NEAT.
//!
//! This is the paper's Section III characterization loop: a population of
//! minimal topologies (inputs fully connected to outputs, zero weights)
//! evolves until the pole stays up for 195 of 200 steps.
//!
//! Run with: `cargo run --release --example quickstart`

use genesys::gym::{rollout, CartPole};
use genesys::neat::{NeatConfig, Population};
use std::sync::atomic::{AtomicU64, Ordering};

fn main() {
    let config = NeatConfig::for_env("cartpole", 4, 1);
    let mut population = Population::new(config, 2024);
    population.set_parallelism(4); // the paper's PLP configuration (CPU_b)

    let episode_seed = AtomicU64::new(0);
    println!("evolving CartPole-v0 (population 150, target fitness 195)...");
    let result = population.run(
        |net| {
            let seed = episode_seed.fetch_add(1, Ordering::Relaxed);
            let mut env = CartPole::new(seed);
            rollout(net, &mut env, 2)
        },
        60,
    );

    for stats in &result.history {
        println!("{stats}");
    }
    let best = &result.best;
    println!(
        "\noutcome: {:?} — best fitness {:.1}, genome has {} nodes / {} connections",
        result.outcome,
        best.fitness().unwrap_or(0.0),
        best.num_nodes(),
        best.num_conns(),
    );
    if result.converged() {
        println!("target reached: NEAT evolved a balancing controller from zero weights.");
    } else {
        println!("target not reached within 60 generations (evolution is stochastic —");
        println!("the paper's Fig 4 shows convergence varying from gen 8 to gen 160).");
    }
}
