//! Offline shim for the `crossbeam::thread` scoped-threads API used by this
//! workspace, backed by `std::thread::scope` (stable since Rust 1.63).
//!
//! Call-site compatible with crossbeam 0.8 for the subset GeneSys uses:
//! `crossbeam::thread::scope(|scope| { scope.spawn(|_| ...); ... })` returning
//! a `Result` that is `Ok` when no spawned thread panicked.

#![deny(missing_docs)]

pub mod thread {
    //! Scoped threads (crossbeam 0.8 `crossbeam::thread`).

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope for spawning threads that may borrow from the enclosing stack
    /// frame. Mirrors `crossbeam::thread::Scope`.
    #[derive(Debug, Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives a
        /// reference to the scope so it can spawn nested threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Creates a scope, runs `f` inside it, and joins every spawned thread
    /// before returning. Matches crossbeam 0.8's contract: a panic in a
    /// *spawned thread* is returned as `Err` with its payload, while a panic
    /// in the scope closure itself propagates to the caller (`std`'s scope
    /// would re-raise both).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let mut closure_panic: Option<Box<dyn std::any::Any + Send>> = None;
        let result = catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                match catch_unwind(AssertUnwindSafe(|| f(&Scope { inner: s }))) {
                    Ok(value) => Some(value),
                    Err(payload) => {
                        closure_panic = Some(payload);
                        None
                    }
                }
            })
        }));
        // `std::thread::scope` re-raises a spawned thread's panic after
        // joining, which the outer catch_unwind turns into `Err`. A closure
        // panic takes precedence, as in crossbeam.
        if let Some(payload) = closure_panic {
            std::panic::resume_unwind(payload);
        }
        match result {
            Ok(Some(value)) => Ok(value),
            Ok(None) => unreachable!("closure panic handled above"),
            Err(thread_panic) => Err(thread_panic),
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        let result = crate::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        });
        assert!(result.is_ok());
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn scoped_threads_can_write_disjoint_chunks() {
        let mut data = vec![0u32; 8];
        crate::thread::scope(|scope| {
            for chunk in data.chunks_mut(2) {
                scope.spawn(move |_| {
                    for v in chunk {
                        *v += 1;
                    }
                });
            }
        })
        .unwrap();
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn closure_panic_propagates_like_crossbeam() {
        let result = std::panic::catch_unwind(|| {
            let _ = crate::thread::scope(|_| panic!("in closure"));
        });
        assert!(result.is_err(), "closure panics must propagate, not Err");
    }

    #[test]
    fn panics_surface_as_err() {
        let result = crate::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
