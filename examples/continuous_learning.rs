//! Continuous learning — the paper's title scenario.
//!
//! The environment drifts: every few generations the cart-pole's physics
//! change (pole length, motor force). A supervised model would need
//! retraining from scratch; the evolving population simply keeps adapting,
//! because evolution *is* its steady state. Watch fitness dip at each
//! regime boundary and recover within a few generations.
//!
//! Run with: `cargo run --release --example continuous_learning`

use genesys::gym::{episode_into, DriftingCartPole, RolloutScratch};
use genesys::neat::{NeatConfig, Population, WorkerLocal};
use std::sync::atomic::{AtomicU64, Ordering};

fn main() {
    let config = NeatConfig::builder(4, 1)
        .pop_size(96)
        .build()
        .expect("valid");
    let mut population = Population::new(config, 512);
    population.set_parallelism(4);

    // One shared world-seed: all genomes face the same drifting physics.
    // The regime advances every 300 episodes ≈ every ~3 generations.
    const WORLD_SEED: u64 = 4242;
    const EPISODES_PER_REGIME: u64 = 300;
    let episode = AtomicU64::new(0);
    // Per-worker rollout buffers: steady-state steps allocate nothing.
    let scratch: WorkerLocal<RolloutScratch> = WorkerLocal::new(RolloutScratch::new);

    println!("gen | regime | pole len | force | best fit | mean fit");
    let mut last_regime = u64::MAX;
    for gen in 0..24 {
        let stats = population.evolve_once(|net| {
            let e = episode.fetch_add(1, Ordering::Relaxed);
            let mut env = DriftingCartPole::new(WORLD_SEED, EPISODES_PER_REGIME).with_episode(e);
            scratch.with(|buffers| episode_into(net, &mut env, buffers).0)
        });
        let probe = DriftingCartPole::new(WORLD_SEED, EPISODES_PER_REGIME)
            .with_episode(episode.load(Ordering::Relaxed));
        let (len, force) = probe.physics();
        let regime = probe.regime();
        let marker = if regime != last_regime {
            "  <-- regime shift"
        } else {
            ""
        };
        last_regime = regime;
        println!(
            "{:>3} | {:>6} | {:>8.2} | {:>5.1} | {:>8.1} | {:>8.1}{}",
            gen, regime, len, force, stats.max_fitness, stats.mean_fitness, marker
        );
    }
    println!("\nthe population re-adapts after every physics shift without any");
    println!("reset, retraining, or hand-tuning — the continuous-learning loop");
    println!("GeneSys is designed to keep running at the edge.");
}
